// Package cachesvc is the shared cache tier: a sharded, replicated
// in-process cache/metadata service that any number of CntrFS mounts
// attach to. It is the step from "one mount, many origins" to "many
// mounts": a fleet of mounts built on one content-addressed backend
// store shares one Service, so a chunk any mount has already fetched
// from the origin is served to every other mount at intra-cluster
// network cost instead of another origin round trip, and path-keyed
// attr/dentry entries let metadata survive mount boundaries the same
// way.
//
// The service is in-process but "network-shaped": all access goes
// through internal/cachecl, whose calls charge the calling mount's
// sim.Clock with the cost-model's NetRTT/NetPerKB, so cross-mount
// behaviour is benchmarkable and bit-for-bit deterministic without real
// sockets.
//
//	mount A ── cachecl ──┐        placement (rendezvous hash)
//	mount B ── cachecl ──┼──► Service ── node 0 ── shard LRUs
//	mount C ── cachecl ──┘        ├───── node 1 ── shard LRUs
//	                              └───── node 2 ── shard LRUs
//	                                        ▼
//	                              backend store (CAS) / origin
//
// The key space is consistent-hashed into shards; a Placement assigns
// each shard a primary plus Options.Replicas replicas across an
// explicit set of Nodes. Writes apply to every copy, reads are served
// by the cheapest live replica, and AddNode/DrainNode/KillNode trigger
// live shard migration: ownership flips immediately (placement version
// bump), lookups during the handoff fall through from the new copy to
// a still-complete old copy so there is no miss storm, and entries are
// copied over with version counters so a late copy can never clobber a
// write that landed after the flip. With the default Options (one
// node, zero replicas) the service is the single-node reference the
// dualtest differential harness pins the replicated tier against.
//
// Correctness under partition comes from epoch leases (the
// sigmaOS fenceclnt/epochclnt shape): a mount holds a lease per shard
// group, every mutation carries its lease's epoch, and the service
// fences writes whose lease has expired or been superseded — a
// partitioned mount that reconnects acquires a fresh epoch and replays
// nothing; whatever it still had in flight under the old epoch is
// rejected, so stale data never lands in the shared tier. The fence
// holds per replica: a stale-epoch write is dropped at every copy and
// counted on every node, never applied to some copies and not others.
// Leases are service-global control-plane state, so in-flight epochs
// survive shard migration and node failure untouched.
package cachesvc

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/sim"
)

// Key names one cached entry. The constructors below define the three
// key spaces the tier serves; a Service instance serves one backend
// store domain (mounts sharing the same CAS), so chunk refs need no
// further namespace.
type Key string

// ChunkKey keys a backend-store blob by its ref (for content-addressed
// backends, the content hash — identical across every mount on the
// shared store).
func ChunkKey(ref blobstore.Ref) Key { return "c:" + Key(ref) }

// AttrKey keys a path's encoded attributes.
func AttrKey(path string) Key { return "a:" + Key(path) }

// DentryKey keys a directory's encoded entry list.
func DentryKey(dir string) Key { return "d:" + Key(dir) }

// Stats aggregates service-wide counters. Per-node counters are summed
// on read; NodeStats attributes them to individual nodes.
type Stats struct {
	// Hits and Misses count Get outcomes; Contains probes count in
	// neither (they are presence checks, not reads). A lookup served by
	// handoff fallthrough counts one hit, on the node that held the data.
	Hits, Misses int64
	// Puts counts applied copies: one per node hosting the key's shard
	// (primary plus replicas plus any handoff source still holding the
	// shard), so a single-node service counts one per mutation.
	Puts int64
	// Seeds counts administrative epoch-free Put calls (registry
	// backfill), one per call regardless of copy count.
	Seeds int64
	// Invalidations counts applied invalidation copies (like Puts).
	Invalidations int64
	// FencedWrites counts mutations rejected because their lease epoch
	// was stale, expired, or released — the partition-safety counter.
	// One per rejected mutation; NodeStats.FencedWrites counts the drop
	// at every copy.
	FencedWrites int64
	// Evictions counts LRU evictions across all nodes and shards.
	Evictions int64
	// Entries and Bytes are the live entry count and stored value bytes,
	// replica copies included.
	Entries, Bytes int64
	// LeasesGranted counts Acquire calls (each grants a fresh epoch);
	// LeasesActive is the number currently held; Expirations counts
	// leases observed expired (on validate/renew).
	LeasesGranted, LeasesActive, Expirations int64
}

// Options tunes a Service.
type Options struct {
	// Shards is the number of cache shards (default 16).
	Shards int
	// ShardCapacity is the LRU byte capacity per shard copy (default
	// 64 MiB). Every replica of a shard has its own capacity.
	ShardCapacity int64
	// Groups is the number of lease shard-groups; shards are striped
	// across groups and a mount holds one lease per group (default 4,
	// clamped to Shards).
	Groups int
	// LeaseTTL is the lease lifetime in virtual time on Clock
	// (default 5s). A lease is expired at exactly its deadline: it is
	// valid while now < expiry and fenced once now >= expiry.
	LeaseTTL time.Duration
	// Clock judges lease expiry. Nil builds a private service clock
	// that nothing advances (leases then only expire when a test
	// advances it — mounts' own clocks never age a lease by accident).
	Clock *sim.Clock
	// VirtualPoints is the number of consistent-hash ring points per
	// shard (default 256; more points, more even arcs).
	VirtualPoints int
	// Nodes is the number of cache nodes the shards are placed across
	// (default 1 — the single-node reference configuration).
	Nodes int
	// Replicas is the number of replica copies each shard keeps beyond
	// its primary (default 0, clamped to Nodes-1).
	Replicas int
}

// Service is the sharded, replicated cache service. All methods are
// safe for concurrent use; tests aside, callers should go through
// cachecl so network costs are charged.
type Service struct {
	opts  Options
	clock *sim.Clock
	ring  []ringPoint

	// ver stamps every accepted mutation; migration copies carry their
	// source's stamp and never overwrite a newer one.
	ver atomic.Uint64

	// topo guards the node set, placement, and migration tasks. Data
	// ops hold it for read while routing and touching stores; topology
	// changes and migration steps hold it for write.
	topo           sync.RWMutex
	nodes          []*node
	placement      [][]int
	placeVersion   uint64
	tasks          []*copyTask
	pendingHandoff map[int]bool

	shardsMoved     atomic.Int64
	entriesCopied   atomic.Int64
	fallthroughHits atomic.Int64
	lostShards      atomic.Int64

	mu      sync.Mutex
	leases  map[leaseID]*leaseState
	epochs  map[leaseID]uint64
	granted int64
	expired int64
	fenced  int64
	seeds   int64
}

type ringPoint struct {
	hash  uint64
	shard int
}

// store is one node's copy of one shard: a lock+LRU over versioned
// entries. complete marks a copy holding every entry the shard has (an
// incomplete copy is mid-handoff and falls through on a miss).
type store struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64
	cap      int64
	complete bool
}

type entry struct {
	key Key
	val []byte
	ver uint64
}

func newStore(cap int64, complete bool) *store {
	return &store{
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		cap:      cap,
		complete: complete,
	}
}

// get returns the value under key, touching LRU order.
func (st *store) get(key Key) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[key]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// peek returns the value and version without touching LRU order.
func (st *store) peek(key Key) ([]byte, uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[key]
	if !ok {
		return nil, 0, false
	}
	e := el.Value.(*entry)
	return e.val, e.ver, true
}

// contains probes presence without counters or LRU effects.
func (st *store) contains(key Key) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.entries[key]
	return ok
}

// put stores a fresh mutation (val is copied) and returns evictions.
func (st *store) put(key Key, val []byte, ver uint64) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[key]; ok {
		e := el.Value.(*entry)
		st.bytes += int64(len(val)) - int64(len(e.val))
		e.val = append([]byte(nil), val...)
		e.ver = ver
		st.lru.MoveToFront(el)
	} else {
		e := &entry{key: key, val: append([]byte(nil), val...), ver: ver}
		st.entries[key] = st.lru.PushFront(e)
		st.bytes += int64(len(val)) + int64(len(key))
	}
	return st.evictLocked()
}

// install lands a migrated copy: it only takes effect when the store
// has no entry for key, or a strictly older one — a write accepted
// after the placement flip always wins over a late copy from the old
// owner. val is shared, not copied: both slices are service-owned and
// never mutated in place.
func (st *store) install(key Key, val []byte, ver uint64) (installed bool, evictions int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[key]; ok {
		e := el.Value.(*entry)
		if e.ver >= ver {
			return false, 0
		}
		st.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		e.ver = ver
		return true, st.evictLocked()
	}
	e := &entry{key: key, val: val, ver: ver}
	st.entries[key] = st.lru.PushBack(e) // migrated copies join cold
	st.bytes += int64(len(val)) + int64(len(key))
	return true, st.evictLocked()
}

// remove drops key, reporting whether it was present.
func (st *store) remove(key Key) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	st.lru.Remove(el)
	delete(st.entries, key)
	st.bytes -= int64(len(e.val)) + int64(len(e.key))
	return true
}

func (st *store) evictLocked() int {
	n := 0
	for st.bytes > st.cap && st.lru.Len() > 1 {
		oldest := st.lru.Back()
		e := oldest.Value.(*entry)
		st.lru.Remove(oldest)
		delete(st.entries, e.key)
		st.bytes -= int64(len(e.val)) + int64(len(e.key))
		n++
	}
	return n
}

// keys returns the store's keys, sorted (the deterministic snapshot a
// migration task copies from).
func (st *store) keys() []Key {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Key, 0, len(st.entries))
	for k := range st.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (st *store) clear() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries = make(map[Key]*list.Element)
	st.lru = list.New()
	st.bytes = 0
}

// New builds a service with the given options.
func New(opts Options) *Service {
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.ShardCapacity <= 0 {
		opts.ShardCapacity = 64 << 20
	}
	if opts.Groups <= 0 {
		opts.Groups = 4
	}
	if opts.Groups > opts.Shards {
		opts.Groups = opts.Shards
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.VirtualPoints <= 0 {
		opts.VirtualPoints = 256
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.Replicas < 0 {
		opts.Replicas = 0
	}
	if opts.Replicas > opts.Nodes-1 {
		opts.Replicas = opts.Nodes - 1
	}
	clock := opts.Clock
	if clock == nil {
		clock = sim.NewClock()
	}
	s := &Service{
		opts:           opts,
		clock:          clock,
		leases:         make(map[leaseID]*leaseState),
		epochs:         make(map[leaseID]uint64),
		placement:      make([][]int, opts.Shards),
		pendingHandoff: make(map[int]bool),
	}
	for i := 0; i < opts.Nodes; i++ {
		s.nodes = append(s.nodes, newNode(i))
	}
	s.buildRing()
	s.topo.Lock()
	s.recomputeLocked()
	// The initial placement is not a handoff: every owner store starts
	// complete and empty, with nothing to migrate from.
	for _, nd := range s.nodes {
		for _, st := range nd.stores {
			st.complete = true
		}
	}
	s.tasks = nil
	s.pendingHandoff = make(map[int]bool)
	s.placeVersion = 1
	s.topo.Unlock()
	return s
}

// buildRing places VirtualPoints points per shard on a hash ring so a
// key maps to the shard owning the first point at or after its hash.
// Consistent hashing keeps the key→shard mapping mostly stable if the
// shard count changes between service generations.
func (s *Service) buildRing() {
	pts := make([]ringPoint, 0, s.opts.Shards*s.opts.VirtualPoints)
	for sh := 0; sh < s.opts.Shards; sh++ {
		for v := 0; v < s.opts.VirtualPoints; v++ {
			pts = append(pts, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d-point-%d", sh, v)),
				shard: sh,
			})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	s.ring = pts
}

func hash64(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// ShardOf returns the shard index a key lives on.
func (s *Service) ShardOf(key Key) int {
	h := hash64(string(key))
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= h })
	if i == len(s.ring) {
		i = 0 // wrap: the ring is a circle
	}
	return s.ring[i].shard
}

// GroupOf returns the lease shard-group guarding mutations of key:
// shards are striped across groups. Groups partition the key space,
// not the node set, so a lease's epoch is untouched by migration.
func (s *Service) GroupOf(key Key) int { return s.ShardOf(key) % s.opts.Groups }

// NumGroups returns the number of lease shard-groups.
func (s *Service) NumGroups() int { return s.opts.Groups }

// NumShards returns the number of cache shards.
func (s *Service) NumShards() int { return s.opts.Shards }

// Clock returns the clock leases expire against (tests advance it to
// simulate time passing on the service side of a partition).
func (s *Service) Clock() *sim.Clock { return s.clock }

// hostingLocked returns the live nodes holding a copy of shard sh:
// current owners first in placement order, then any handoff sources
// still holding the shard, in node-id order. Callers hold topo.
func (s *Service) hostingLocked(sh int) []*node {
	owners := s.placement[sh]
	out := make([]*node, 0, len(owners)+1)
	isOwner := make(map[int]bool, len(owners))
	for _, id := range owners {
		isOwner[id] = true
		if nd := s.nodes[id]; nd.live && nd.stores[sh] != nil {
			out = append(out, nd)
		}
	}
	for _, nd := range s.nodes {
		if !isOwner[nd.id] && nd.live && nd.stores[sh] != nil {
			out = append(out, nd)
		}
	}
	return out
}

// completeHostLocked returns the cheapest live node other than skip
// holding a complete copy of shard sh, or nil.
func (s *Service) completeHostLocked(sh, skip int) *node {
	var best *node
	for _, nd := range s.hostingLocked(sh) {
		if nd.id == skip || !nd.stores[sh].complete {
			continue
		}
		if best == nil || nd.distance < best.distance ||
			(nd.distance == best.distance && nd.id < best.id) {
			best = nd
		}
	}
	return best
}

// readTargetLocked picks the node a placement-unaware read routes to:
// the cheapest live owner (lowest distance, placement order breaking
// ties — so with a uniform cost model, the primary).
func (s *Service) readTargetLocked(sh int) *node {
	var best *node
	for _, id := range s.placement[sh] {
		nd := s.nodes[id]
		if !nd.live {
			continue
		}
		if best == nil || nd.distance < best.distance {
			best = nd
		}
	}
	return best
}

// getFromLocked serves a lookup at node nd, falling through to a
// complete copy when nd's copy is mid-handoff. hops counts extra
// cross-node transfers the lookup cost. Callers hold topo for read.
func (s *Service) getFromLocked(nd *node, sh int, key Key) ([]byte, bool, int) {
	st := nd.stores[sh]
	if st != nil {
		if val, ok := st.get(key); ok {
			nd.hits.Add(1)
			return val, true, 0
		}
		if st.complete {
			nd.misses.Add(1)
			return nil, false, 0
		}
	}
	// The copy here is absent or incomplete: fall through to a complete
	// copy so a handoff in progress never manufactures a miss storm.
	src := s.completeHostLocked(sh, nd.id)
	if src == nil {
		nd.misses.Add(1)
		return nil, false, 0
	}
	val, ver, ok := src.stores[sh].peek(key)
	if !ok {
		nd.misses.Add(1)
		return nil, false, 1
	}
	src.hits.Add(1)
	s.fallthroughHits.Add(1)
	if st != nil {
		// Pull-copy: the served entry also lands in the queried copy so
		// the handoff converges with the read traffic.
		if installed, ev := st.install(key, val, ver); installed {
			s.entriesCopied.Add(1)
			nd.evictions.Add(int64(ev))
		}
	}
	return val, true, 1
}

// Get returns the cached value for key, served by the cheapest live
// replica (internal routing — cachecl routes explicitly and pays the
// network). The returned slice is owned by the service and must not be
// modified.
func (s *Service) Get(key Key) ([]byte, bool) {
	s.topo.RLock()
	defer s.topo.RUnlock()
	sh := s.ShardOf(key)
	nd := s.readTargetLocked(sh)
	if nd == nil {
		return nil, false
	}
	val, ok, _ := s.getFromLocked(nd, sh, key)
	return val, ok
}

// Contains reports presence on any live copy without touching LRU
// order or hit/miss counters — the probe Registry.Pull uses to skip
// transfers.
func (s *Service) Contains(key Key) bool {
	s.topo.RLock()
	defer s.topo.RUnlock()
	sh := s.ShardOf(key)
	for _, nd := range s.hostingLocked(sh) {
		if nd.stores[sh].contains(key) {
			return true
		}
	}
	return false
}

// applyLocked lands a mutation on every live copy of the shard —
// owners and any handoff sources alike, so a fallthrough can never
// serve a value a later write replaced. Returns the copy count.
// Callers hold topo for read.
func (s *Service) applyLocked(sh int, key Key, val []byte) int {
	ver := s.ver.Add(1)
	hosting := s.hostingLocked(sh)
	for _, nd := range hosting {
		ev := nd.stores[sh].put(key, val, ver)
		nd.puts.Add(1)
		nd.evictions.Add(int64(ev))
	}
	return len(hosting)
}

// Put stores val under key on behalf of the lease holder, on the
// primary and every replica. The write is fenced — rejected with
// ErrFenced and counted at every copy — when the lease's epoch is
// stale, expired, or released. val is copied.
func (s *Service) Put(l Lease, key Key, val []byte) error {
	if err := s.admit(l, key); err != nil {
		return err
	}
	s.topo.RLock()
	defer s.topo.RUnlock()
	s.applyLocked(s.ShardOf(key), key, val)
	return nil
}

// Seed stores val under key without a lease: the administrative
// backfill path used when a registry pull materializes chunks the tier
// should serve. Chunk content is immutable (content-addressed), so the
// epoch machinery guarding mutable metadata is not needed here.
func (s *Service) Seed(key Key, val []byte) {
	s.mu.Lock()
	s.seeds++
	s.mu.Unlock()
	s.topo.RLock()
	defer s.topo.RUnlock()
	s.applyLocked(s.ShardOf(key), key, val)
}

// Invalidate drops key on behalf of the lease holder, with the same
// fencing rule as Put. The drop lands on every copy — a handoff source
// included, so a fallthrough can never resurrect an invalidated entry.
// Dropping an absent key is not an error.
func (s *Service) Invalidate(l Lease, key Key) error {
	if err := s.admit(l, key); err != nil {
		return err
	}
	s.topo.RLock()
	defer s.topo.RUnlock()
	sh := s.ShardOf(key)
	for _, nd := range s.hostingLocked(sh) {
		nd.stores[sh].remove(key)
		nd.invals.Add(1)
	}
	return nil
}

// Reset drops every cached entry on every node (leases, epochs,
// placement, migration progress and counters are kept). Experiments
// call it between a seeding phase and a measured cold-read phase.
func (s *Service) Reset() {
	s.topo.RLock()
	defer s.topo.RUnlock()
	for _, nd := range s.nodes {
		for _, st := range nd.stores {
			st.clear()
		}
	}
}

// Stats returns a snapshot of the service counters, summed across
// nodes. See NodeStats for the per-node split.
func (s *Service) Stats() Stats {
	var agg Stats
	s.topo.RLock()
	for _, nd := range s.nodes {
		agg.Hits += nd.hits.Load()
		agg.Misses += nd.misses.Load()
		agg.Puts += nd.puts.Load()
		agg.Invalidations += nd.invals.Load()
		agg.Evictions += nd.evictions.Load()
		for _, st := range nd.stores {
			st.mu.Lock()
			agg.Entries += int64(len(st.entries))
			agg.Bytes += st.bytes
			st.mu.Unlock()
		}
	}
	s.topo.RUnlock()
	s.mu.Lock()
	agg.FencedWrites = s.fenced
	agg.LeasesGranted = s.granted
	agg.LeasesActive = int64(len(s.leases))
	agg.Expirations = s.expired
	agg.Seeds = s.seeds
	s.mu.Unlock()
	return agg
}

// HitRatio is hits over lookups; a service that has seen no lookups
// reports 0.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}
