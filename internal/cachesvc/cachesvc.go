// Package cachesvc is the shared cache tier: a sharded in-process
// cache/metadata service that any number of CntrFS mounts attach to.
// It is the step from "one mount, many origins" to "many mounts": a
// fleet of mounts built on one content-addressed backend store shares
// one Service, so a chunk any mount has already fetched from the origin
// is served to every other mount at intra-cluster network cost instead
// of another origin round trip, and path-keyed attr/dentry entries let
// metadata survive mount boundaries the same way.
//
// The service is in-process but "network-shaped": all access goes
// through internal/cachecl, whose calls charge the calling mount's
// sim.Clock with the cost-model's NetRTT/NetPerKB, so cross-mount
// behaviour is benchmarkable and bit-for-bit deterministic without real
// sockets.
//
//	mount A ── cachecl ──┐
//	mount B ── cachecl ──┼──► Service ── shards (consistent hash,
//	mount C ── cachecl ──┘        │        per-shard lock + LRU)
//	                              ▼
//	                      backend store (CAS) / origin
//
// Correctness under partition comes from epoch leases (the
// sigmaOS fenceclnt/epochclnt shape): a mount holds a lease per shard
// group, every mutation carries its lease's epoch, and the service
// fences writes whose lease has expired or been superseded — a
// partitioned mount that reconnects acquires a fresh epoch and replays
// nothing; whatever it still had in flight under the old epoch is
// rejected, so stale data never lands in the shared tier.
package cachesvc

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/sim"
)

// Key names one cached entry. The constructors below define the three
// key spaces the tier serves; a Service instance serves one backend
// store domain (mounts sharing the same CAS), so chunk refs need no
// further namespace.
type Key string

// ChunkKey keys a backend-store blob by its ref (for content-addressed
// backends, the content hash — identical across every mount on the
// shared store).
func ChunkKey(ref blobstore.Ref) Key { return "c:" + Key(ref) }

// AttrKey keys a path's encoded attributes.
func AttrKey(path string) Key { return "a:" + Key(path) }

// DentryKey keys a directory's encoded entry list.
func DentryKey(dir string) Key { return "d:" + Key(dir) }

// Stats aggregates service-wide counters. Per-shard counters are summed
// on read.
type Stats struct {
	// Hits and Misses count Get outcomes; Contains probes count in
	// neither (they are presence checks, not reads).
	Hits, Misses int64
	// Puts counts accepted mutations (lease-carrying Puts plus Seeds).
	Puts int64
	// Seeds counts administrative epoch-free Puts (registry backfill).
	Seeds int64
	// Invalidations counts accepted Invalidate calls.
	Invalidations int64
	// FencedWrites counts mutations rejected because their lease epoch
	// was stale, expired, or released — the partition-safety counter.
	FencedWrites int64
	// Evictions counts LRU evictions across all shards.
	Evictions int64
	// Entries and Bytes are the live entry count and stored value bytes.
	Entries, Bytes int64
	// LeasesGranted counts Acquire calls (each grants a fresh epoch);
	// LeasesActive is the number currently held; Expirations counts
	// leases observed expired (on validate/renew).
	LeasesGranted, LeasesActive, Expirations int64
}

// Options tunes a Service.
type Options struct {
	// Shards is the number of cache shards (default 16).
	Shards int
	// ShardCapacity is the LRU byte capacity per shard (default 64 MiB).
	ShardCapacity int64
	// Groups is the number of lease shard-groups; shards are striped
	// across groups and a mount holds one lease per group (default 4,
	// clamped to Shards).
	Groups int
	// LeaseTTL is the lease lifetime in virtual time on Clock
	// (default 5s). A lease is expired at exactly its deadline: it is
	// valid while now < expiry and fenced once now >= expiry.
	LeaseTTL time.Duration
	// Clock judges lease expiry. Nil builds a private service clock
	// that nothing advances (leases then only expire when a test
	// advances it — mounts' own clocks never age a lease by accident).
	Clock *sim.Clock
	// VirtualPoints is the number of consistent-hash ring points per
	// shard (default 256; more points, more even arcs).
	VirtualPoints int
}

// Service is the sharded cache service. All methods are safe for
// concurrent use; tests aside, callers should go through cachecl so
// network costs are charged.
type Service struct {
	opts  Options
	clock *sim.Clock

	ring   []ringPoint
	shards []*shard

	mu      sync.Mutex
	leases  map[leaseID]*leaseState
	epochs  map[leaseID]uint64
	granted int64
	expired int64
	fenced  int64
	seeds   int64
}

type ringPoint struct {
	hash  uint64
	shard int
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	cap     int64

	hits, misses, puts, invals, evictions int64
}

type entry struct {
	key Key
	val []byte
}

// New builds a service with the given options.
func New(opts Options) *Service {
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.ShardCapacity <= 0 {
		opts.ShardCapacity = 64 << 20
	}
	if opts.Groups <= 0 {
		opts.Groups = 4
	}
	if opts.Groups > opts.Shards {
		opts.Groups = opts.Shards
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.VirtualPoints <= 0 {
		opts.VirtualPoints = 256
	}
	clock := opts.Clock
	if clock == nil {
		clock = sim.NewClock()
	}
	s := &Service{
		opts:   opts,
		clock:  clock,
		shards: make([]*shard, opts.Shards),
		leases: make(map[leaseID]*leaseState),
		epochs: make(map[leaseID]uint64),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			entries: make(map[Key]*list.Element),
			lru:     list.New(),
			cap:     opts.ShardCapacity,
		}
	}
	s.buildRing()
	return s
}

// buildRing places VirtualPoints points per shard on a hash ring so a
// key maps to the shard owning the first point at or after its hash.
// Consistent hashing keeps the key→shard mapping mostly stable if the
// shard count changes between service generations.
func (s *Service) buildRing() {
	pts := make([]ringPoint, 0, s.opts.Shards*s.opts.VirtualPoints)
	for sh := 0; sh < s.opts.Shards; sh++ {
		for v := 0; v < s.opts.VirtualPoints; v++ {
			pts = append(pts, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d-point-%d", sh, v)),
				shard: sh,
			})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	s.ring = pts
}

func hash64(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// ShardOf returns the shard index a key lives on.
func (s *Service) ShardOf(key Key) int {
	h := hash64(string(key))
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= h })
	if i == len(s.ring) {
		i = 0 // wrap: the ring is a circle
	}
	return s.ring[i].shard
}

// GroupOf returns the lease shard-group guarding mutations of key:
// shards are striped across groups.
func (s *Service) GroupOf(key Key) int { return s.ShardOf(key) % s.opts.Groups }

// NumGroups returns the number of lease shard-groups.
func (s *Service) NumGroups() int { return s.opts.Groups }

// Clock returns the clock leases expire against (tests advance it to
// simulate time passing on the service side of a partition).
func (s *Service) Clock() *sim.Clock { return s.clock }

// Get returns the cached value for key. The returned slice is owned by
// the service and must not be modified.
func (s *Service) Get(key Key) ([]byte, bool) {
	sh := s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports presence without touching LRU order or hit/miss
// counters — the probe Registry.Pull uses to skip transfers.
func (s *Service) Contains(key Key) bool {
	sh := s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[key]
	return ok
}

// Put stores val under key on behalf of the lease holder. The write is
// fenced — rejected with ErrFenced and counted — when the lease's epoch
// is stale, expired, or released. val is copied.
func (s *Service) Put(l Lease, key Key, val []byte) error {
	if err := s.validate(l, key); err != nil {
		return err
	}
	s.put(key, val)
	return nil
}

// Seed stores val under key without a lease: the administrative
// backfill path used when a registry pull materializes chunks the tier
// should serve. Chunk content is immutable (content-addressed), so the
// epoch machinery guarding mutable metadata is not needed here.
func (s *Service) Seed(key Key, val []byte) {
	s.mu.Lock()
	s.seeds++
	s.mu.Unlock()
	s.put(key, val)
}

func (s *Service) put(key Key, val []byte) {
	sh := s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.puts++
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		sh.bytes += int64(len(val)) - int64(len(e.val))
		e.val = append([]byte(nil), val...)
		sh.lru.MoveToFront(el)
	} else {
		e := &entry{key: key, val: append([]byte(nil), val...)}
		sh.entries[key] = sh.lru.PushFront(e)
		sh.bytes += int64(len(val)) + int64(len(key))
	}
	for sh.bytes > sh.cap && sh.lru.Len() > 1 {
		oldest := sh.lru.Back()
		e := oldest.Value.(*entry)
		sh.lru.Remove(oldest)
		delete(sh.entries, e.key)
		sh.bytes -= int64(len(e.val)) + int64(len(e.key))
		sh.evictions++
	}
}

// Invalidate drops key on behalf of the lease holder, with the same
// fencing rule as Put. Dropping an absent key is not an error.
func (s *Service) Invalidate(l Lease, key Key) error {
	if err := s.validate(l, key); err != nil {
		return err
	}
	sh := s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.invals++
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		sh.lru.Remove(el)
		delete(sh.entries, key)
		sh.bytes -= int64(len(e.val)) + int64(len(e.key))
	}
	return nil
}

// Reset drops every cached entry (leases, epochs and counters are
// kept). Experiments call it between a seeding phase and a measured
// cold-read phase.
func (s *Service) Reset() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.entries = make(map[Key]*list.Element)
		sh.lru = list.New()
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Puts += sh.puts
		st.Invalidations += sh.invals
		st.Evictions += sh.evictions
		st.Entries += int64(len(sh.entries))
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	s.mu.Lock()
	st.FencedWrites = s.fenced
	st.LeasesGranted = s.granted
	st.LeasesActive = int64(len(s.leases))
	st.Expirations = s.expired
	st.Seeds = s.seeds
	s.mu.Unlock()
	return st
}

// HitRatio is hits over lookups; a service that has seen no lookups
// reports 0.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}
