package cachesvc

import (
	"errors"
	"time"
)

// defaultLeaseTTL is the lease lifetime when Options.LeaseTTL is zero.
const defaultLeaseTTL = 5 * time.Second

// Sentinel errors of the lease protocol.
var (
	// ErrFenced rejects a mutation whose lease epoch is stale, expired
	// or released. The holder must Reattach (acquire a fresh epoch)
	// before mutating again; fenced writes are dropped, never replayed.
	ErrFenced = errors.New("cachesvc: write fenced (stale or expired epoch)")
	// ErrExpired rejects a Renew of a lease past its deadline: renewal
	// cannot resurrect an expired lease, only Acquire can.
	ErrExpired = errors.New("cachesvc: lease expired; re-acquire for a new epoch")
	// ErrNotHeld rejects Release/Renew of a lease that is not the
	// current grant (double release, or superseded by a newer epoch).
	ErrNotHeld = errors.New("cachesvc: lease not held")
	// ErrWrongGroup rejects a mutation whose key belongs to a different
	// shard group than the lease covers — a client bug, not a fence.
	ErrWrongGroup = errors.New("cachesvc: key outside the lease's shard group")
)

// Lease is one grant: mount holds epoch over one shard group until
// Expires (on the service clock). The epoch is the fencing token every
// mutation carries.
type Lease struct {
	Mount   string
	Group   int
	Epoch   uint64
	Expires time.Duration
}

type leaseID struct {
	mount string
	group int
}

type leaseState struct {
	epoch   uint64
	expires time.Duration
}

// Acquire grants mount a fresh lease over the shard group. Every
// acquisition mints a new epoch — a reconnecting mount always comes
// back with a higher epoch than anything it had in flight, which is
// what fences its stale writes.
func (s *Service) Acquire(mount string, group int) (Lease, error) {
	if group < 0 || group >= s.opts.Groups {
		return Lease{}, ErrWrongGroup
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := leaseID{mount, group}
	epoch := s.epochs[id] + 1
	s.epochs[id] = epoch
	st := &leaseState{epoch: epoch, expires: s.clock.Now() + s.opts.LeaseTTL}
	s.leases[id] = st
	s.granted++
	return Lease{Mount: mount, Group: group, Epoch: epoch, Expires: st.expires}, nil
}

// Renew extends an unexpired lease to a fresh TTL, keeping its epoch.
// A lease at or past its deadline cannot be renewed (ErrExpired); a
// lease superseded or released returns ErrNotHeld.
func (s *Service) Renew(l Lease) (Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := leaseID{l.Mount, l.Group}
	st, ok := s.leases[id]
	if !ok || st.epoch != l.Epoch {
		return Lease{}, ErrNotHeld
	}
	if s.clock.Now() >= st.expires {
		s.expired++
		delete(s.leases, id)
		return Lease{}, ErrExpired
	}
	st.expires = s.clock.Now() + s.opts.LeaseTTL
	l.Expires = st.expires
	return l, nil
}

// Release drops the lease. Releasing a lease that is not the current
// grant — already released, or superseded by a newer epoch — returns
// ErrNotHeld, so a double release is always visible to the caller.
func (s *Service) Release(l Lease) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := leaseID{l.Mount, l.Group}
	st, ok := s.leases[id]
	if !ok || st.epoch != l.Epoch {
		return ErrNotHeld
	}
	delete(s.leases, id)
	return nil
}

// admit is the fence: a mutation of key under lease l is admitted
// only if l covers key's shard group, is the current grant for
// (mount, group), and has not reached its deadline. Expiry is judged on
// the service clock — the holder's opinion does not matter, which is
// exactly what makes a partitioned mount safe.
//
// The fence holds per replica: one rejected mutation counts once at
// the service level (Stats.FencedWrites stays mutation-granular across
// any node count) and once on every node currently holding a copy of
// the key's shard (NodeStats.FencedWrites — the drop happened at every
// copy, applied to none).
func (s *Service) admit(l Lease, key Key) error {
	if s.GroupOf(key) != l.Group {
		return ErrWrongGroup
	}
	s.mu.Lock()
	id := leaseID{l.Mount, l.Group}
	st, ok := s.leases[id]
	fenced := false
	switch {
	case !ok || st.epoch != l.Epoch:
		s.fenced++
		fenced = true
	case s.clock.Now() >= st.expires:
		s.expired++
		s.fenced++
		delete(s.leases, id)
		fenced = true
	}
	s.mu.Unlock()
	if !fenced {
		return nil
	}
	// s.mu is released before taking topo: lease state and topology are
	// independent lock domains and must never nest.
	s.topo.RLock()
	for _, nd := range s.hostingLocked(s.ShardOf(key)) {
		nd.fenced.Add(1)
	}
	s.topo.RUnlock()
	return ErrFenced
}
