package cachesvc

import (
	"bytes"
	"fmt"
)

// copyTask is one shard handoff in progress: copy the source node's
// entries for the shard into the target node's incomplete copy. keys
// is a sorted snapshot taken at task creation; entries written after
// the snapshot reach the target anyway because mutations dual-write to
// every copy, and a snapshotted entry that was overwritten mid-copy
// loses to the newer version at install time.
type copyTask struct {
	shard  int
	target int
	source int
	keys   []Key
	next   int
}

func (s *Service) hasTaskLocked(sh, target int) bool {
	for _, t := range s.tasks {
		if t.shard == sh && t.target == target {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

// recomputeLocked re-derives placement from the current node set and
// repairs migration state: new owner copies are created (complete when
// the shard has no data to inherit), tasks whose target or source
// vanished are dropped or re-sourced, and missing tasks are created.
// Ownership flips here — before any data moves — so the placement
// version bump is what routes clients; the data follows via tasks and
// read fallthrough. Callers hold topo for write.
func (s *Service) recomputeLocked() {
	s.placeVersion++
	for sh := range s.placement {
		owners := s.ownersForLocked(sh)
		if !equalInts(owners, s.placement[sh]) {
			s.pendingHandoff[sh] = true
		}
		s.placement[sh] = owners
	}

	// Create owner copies. A copy starts complete only when the shard
	// has no complete live copy to migrate from (a genuinely fresh or
	// fully lost shard: nothing to copy, start serving empty).
	for sh, owners := range s.placement {
		src := s.completeHostLocked(sh, -1)
		for _, id := range owners {
			nd := s.nodes[id]
			if nd.stores[sh] == nil {
				nd.stores[sh] = newStore(s.opts.ShardCapacity, src == nil)
			}
		}
		if src == nil {
			// No complete copy survives anywhere: force the remaining
			// copies complete so the shard serves (as empty/partial cache)
			// instead of falling through forever. If any copy was
			// mid-migration, cached entries were genuinely lost.
			lost := false
			for _, nd := range s.hostingLocked(sh) {
				st := nd.stores[sh]
				if !st.complete {
					if s.hasTaskLocked(sh, nd.id) {
						lost = true
					}
					st.complete = true
				}
			}
			if lost {
				s.lostShards.Add(1)
			}
		}
	}

	// Repair existing tasks against the new topology.
	keep := s.tasks[:0]
	for _, t := range s.tasks {
		tn := s.nodes[t.target]
		st := tn.stores[t.shard]
		if !tn.live || st == nil || st.complete || !containsInt(s.placement[t.shard], t.target) {
			continue // target vanished, finished, or lost ownership again
		}
		sn := s.nodes[t.source]
		if !sn.live || sn.stores[t.shard] == nil || !sn.stores[t.shard].complete {
			// Source died or was dropped: re-source from a surviving
			// complete copy with a fresh snapshot.
			src := s.completeHostLocked(t.shard, t.target)
			if src == nil {
				st.complete = true // unreachable after force-complete above
				continue
			}
			t.source = src.id
			t.keys = src.stores[t.shard].keys()
			t.next = 0
		}
		keep = append(keep, t)
	}
	s.tasks = keep

	// Create tasks for incomplete owner copies that have none.
	for sh, owners := range s.placement {
		for _, id := range owners {
			nd := s.nodes[id]
			st := nd.stores[sh]
			if st == nil || st.complete || s.hasTaskLocked(sh, id) {
				continue
			}
			src := s.completeHostLocked(sh, id)
			if src == nil {
				st.complete = true
				continue
			}
			s.tasks = append(s.tasks, &copyTask{
				shard:  sh,
				target: id,
				source: src.id,
				keys:   src.stores[sh].keys(),
			})
		}
	}
}

// settleLocked finishes handoffs whose owner copies are all complete:
// lingering non-owner copies (old owners, drained nodes) are dropped
// and the shard counts as moved. Callers hold topo for write.
func (s *Service) settleLocked() {
	for sh, owners := range s.placement {
		if len(owners) == 0 {
			continue
		}
		done := true
		for _, id := range owners {
			st := s.nodes[id].stores[sh]
			if st == nil || !st.complete {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		for _, nd := range s.nodes {
			if nd.stores[sh] != nil && !containsInt(owners, nd.id) {
				delete(nd.stores, sh)
			}
		}
		if s.pendingHandoff[sh] {
			delete(s.pendingHandoff, sh)
			s.shardsMoved.Add(1)
		}
	}
}

// MigrateStep advances migration by copying up to maxEntries entries
// (<= 0 means a default batch of 256) and reports whether work
// remains. The copy is incremental: the service stays fully available
// between steps, with reads falling through and writes dual-writing.
func (s *Service) MigrateStep(maxEntries int) bool {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	s.topo.Lock()
	defer s.topo.Unlock()
	budget := maxEntries
	for budget > 0 && len(s.tasks) > 0 {
		t := s.tasks[0]
		src := s.nodes[t.source].stores[t.shard]
		dst := s.nodes[t.target].stores[t.shard]
		if src == nil || dst == nil || dst.complete {
			s.tasks = s.tasks[1:] // repaired away underneath us
			continue
		}
		for budget > 0 && t.next < len(t.keys) {
			k := t.keys[t.next]
			t.next++
			val, ver, ok := src.peek(k)
			if !ok {
				continue // deleted since the snapshot
			}
			installed, ev := dst.install(k, val, ver)
			if installed {
				s.entriesCopied.Add(1)
				s.nodes[t.target].evictions.Add(int64(ev))
			}
			budget--
		}
		if t.next >= len(t.keys) {
			dst.complete = true
			s.tasks = s.tasks[1:]
		}
	}
	s.settleLocked()
	return len(s.tasks) > 0
}

// MigrateAll runs migration to completion.
func (s *Service) MigrateAll() {
	for s.MigrateStep(1 << 16) {
	}
}

// MigrationStats reports migration progress and lifetime counters.
type MigrationStats struct {
	// PlacementVersion bumps on every topology change.
	PlacementVersion uint64
	// MigratingShards is the number of shards with at least one
	// incomplete owner copy (handoff in progress).
	MigratingShards int
	// PendingEntries is the number of snapshotted entries still to
	// copy (an upper bound: deleted entries are skipped).
	PendingEntries int
	// ShardsMoved counts completed ownership handoffs.
	ShardsMoved int64
	// EntriesCopied counts entries landed by migration copy or read
	// fallthrough pull-copy.
	EntriesCopied int64
	// FallthroughHits counts lookups served by a handoff source while
	// the addressed copy was incomplete — the no-miss-storm counter.
	FallthroughHits int64
	// LostShards counts shards whose only complete copy died
	// mid-handoff (cached entries lost, re-fetched from origin).
	LostShards int64
}

// MigrationStats returns a snapshot of migration state.
func (s *Service) MigrationStats() MigrationStats {
	s.topo.RLock()
	defer s.topo.RUnlock()
	ms := MigrationStats{
		PlacementVersion: s.placeVersion,
		ShardsMoved:      s.shardsMoved.Load(),
		EntriesCopied:    s.entriesCopied.Load(),
		FallthroughHits:  s.fallthroughHits.Load(),
		LostShards:       s.lostShards.Load(),
	}
	migrating := make(map[int]bool)
	for _, t := range s.tasks {
		migrating[t.shard] = true
		ms.PendingEntries += len(t.keys) - t.next
	}
	ms.MigratingShards = len(migrating)
	return ms
}

// Snapshot returns the service's logical contents: for each shard, the
// entries of its first complete copy (or the union of partial copies
// if none is complete). Values are copied. The dualtest harness diffs
// this against the single-node reference.
func (s *Service) Snapshot() map[Key][]byte {
	s.topo.RLock()
	defer s.topo.RUnlock()
	out := make(map[Key][]byte)
	for sh := range s.placement {
		hosting := s.hostingLocked(sh)
		var from []*node
		if nd := s.completeHostLocked(sh, -1); nd != nil {
			from = []*node{nd}
		} else {
			from = hosting
		}
		for _, nd := range from {
			st := nd.stores[sh]
			st.mu.Lock()
			for k, el := range st.entries {
				if _, dup := out[k]; !dup {
					out[k] = append([]byte(nil), el.Value.(*entry).val...)
				}
			}
			st.mu.Unlock()
		}
	}
	return out
}

// CheckConsistency verifies the replication invariants: every pair of
// complete copies of a shard holds identical entries, and every
// incomplete copy is a value-consistent subset of a complete copy.
// Returns nil when the invariants hold.
func (s *Service) CheckConsistency() error {
	s.topo.RLock()
	defer s.topo.RUnlock()
	dump := func(st *store) map[Key][]byte {
		st.mu.Lock()
		defer st.mu.Unlock()
		m := make(map[Key][]byte, len(st.entries))
		for k, el := range st.entries {
			m[k] = el.Value.(*entry).val
		}
		return m
	}
	for sh := range s.placement {
		var ref map[Key][]byte
		refNode := -1
		for _, nd := range s.hostingLocked(sh) {
			st := nd.stores[sh]
			if !st.complete {
				continue
			}
			m := dump(st)
			if ref == nil {
				ref, refNode = m, nd.id
				continue
			}
			if len(m) != len(ref) {
				return fmt.Errorf("shard %d: node %d holds %d entries, node %d holds %d",
					sh, nd.id, len(m), refNode, len(ref))
			}
			for k, v := range m {
				rv, ok := ref[k]
				if !ok || !bytes.Equal(v, rv) {
					return fmt.Errorf("shard %d: key %q differs between node %d and node %d",
						sh, k, nd.id, refNode)
				}
			}
		}
		if ref == nil {
			continue
		}
		for _, nd := range s.hostingLocked(sh) {
			st := nd.stores[sh]
			if st.complete {
				continue
			}
			for k, v := range dump(st) {
				rv, ok := ref[k]
				if !ok || !bytes.Equal(v, rv) {
					return fmt.Errorf("shard %d: incomplete copy on node %d diverges from node %d at key %q",
						sh, nd.id, refNode, k)
				}
			}
		}
	}
	return nil
}
