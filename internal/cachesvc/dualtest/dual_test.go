package dualtest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cntr/internal/cachecl"
	"cntr/internal/cachesvc"
	"cntr/internal/sim"
)

// TestDifferentialSeeds is the core pin: across 20 seeds and three
// replication configurations, the replicated tier must be observably
// equivalent to the single-node reference while the workload
// interleaves migration, lease expiry, superseded epochs, node
// failure, and drain. The aggregate coverage assertions make sure the
// equivalence was earned — the runs actually moved shards, fell
// through mid-handoff, fenced writes, and killed nodes.
func TestDifferentialSeeds(t *testing.T) {
	configs := []struct {
		nodes, replicas int
	}{
		{2, 1},
		{3, 1},
		{4, 2},
	}
	var total Result
	for _, cfg := range configs {
		for seed := uint64(1); seed <= 20; seed++ {
			name := fmt.Sprintf("nodes=%d_replicas=%d_seed=%d", cfg.nodes, cfg.replicas, seed)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Options{
					Seed:     seed,
					Nodes:    cfg.nodes,
					Replicas: cfg.replicas,
					Ops:      2500,
				})
				if err != nil {
					t.Fatal(err)
				}
				total.Hits += res.Hits
				total.Fenced += res.Fenced
				total.AddNodes += res.AddNodes
				total.Drains += res.Drains
				total.Kills += res.Kills
				total.ShardsMoved += res.ShardsMoved
				total.FallthroughHits += res.FallthroughHits
				total.EntriesCopied += res.EntriesCopied
			})
		}
	}
	if t.Failed() {
		return
	}
	if total.Hits == 0 {
		t.Error("workloads never hit the cache — the comparison was vacuous")
	}
	if total.Fenced == 0 {
		t.Error("workloads never fenced a write — per-replica fencing untested")
	}
	if total.AddNodes == 0 || total.Drains == 0 || total.Kills == 0 {
		t.Errorf("topology coverage incomplete: adds=%d drains=%d kills=%d",
			total.AddNodes, total.Drains, total.Kills)
	}
	if total.ShardsMoved == 0 {
		t.Error("no shard ever completed a handoff — migration untested")
	}
	if total.FallthroughHits == 0 {
		t.Error("no lookup was ever served by handoff fallthrough — the no-miss-storm path untested")
	}
	if total.EntriesCopied == 0 {
		t.Error("migration never copied an entry")
	}
}

// TestDifferentialLongRun grinds one seed much longer than the table
// runs, so slow-building divergence (version-counter drift, settle
// leaks, counter skew) has room to surface.
func TestDifferentialLongRun(t *testing.T) {
	res, err := Run(Options{Seed: 42, Nodes: 3, Replicas: 1, Ops: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 || res.ShardsMoved == 0 || res.Fenced == 0 {
		t.Errorf("long run under-covered: kills=%d moved=%d fenced=%d",
			res.Kills, res.ShardsMoved, res.Fenced)
	}
}

// TestDifferentialClientRouting runs the differential through
// cachecl — the placement-aware routing layer with its cached
// placement version and retry-on-ErrMoved — instead of addressing the
// service directly. Lookup outcomes, value bytes, and client-side
// fenced counts must match the reference client attached to the
// single-node service, while topology churns under the replicated
// client's cached routing table (forcing ErrMoved refreshes, which are
// asserted to actually happen).
func TestDifferentialClientRouting(t *testing.T) {
	model := sim.DefaultCostModel()

	repSvcClock := sim.NewClock()
	refSvcClock := sim.NewClock()
	repSvc := cachesvc.New(cachesvc.Options{
		Nodes: 3, Replicas: 1, Clock: repSvcClock, ShardCapacity: 1 << 30,
	})
	refSvc := cachesvc.New(cachesvc.Options{
		Clock: refSvcClock, ShardCapacity: 1 << 30,
	})
	repCl := cachecl.New(repSvc, "m0", sim.NewClock(), model)
	refCl := cachecl.New(refSvc, "m0", sim.NewClock(), model)
	if err := repCl.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := refCl.Attach(); err != nil {
		t.Fatal(err)
	}

	r := sim.NewRand(7)
	path := func(i int) string { return fmt.Sprintf("/d/f-%d", i) }
	const keys = 96
	gen := make([]int, keys)
	val := func(k int) []byte {
		return []byte(fmt.Sprintf("attr-%d-gen-%d", k, gen[k]))
	}

	for op := 0; op < 6000; op++ {
		ki := r.Intn(keys)
		roll := r.Intn(1000)
		switch {
		case roll < 400:
			repVal, repOK := repCl.GetAttr(path(ki))
			refVal, refOK := refCl.GetAttr(path(ki))
			if repOK != refOK {
				t.Fatalf("op %d: GetAttr(%s): replicated ok=%v reference ok=%v",
					op, path(ki), repOK, refOK)
			}
			if repOK && !bytes.Equal(repVal, refVal) {
				t.Fatalf("op %d: GetAttr(%s): bytes diverge", op, path(ki))
			}
		case roll < 700:
			gen[ki]++
			repErr := repCl.PutAttr(path(ki), val(ki))
			refErr := refCl.PutAttr(path(ki), val(ki))
			if (repErr == nil) != (refErr == nil) {
				t.Fatalf("op %d: PutAttr(%s): replicated err=%v reference err=%v",
					op, path(ki), repErr, refErr)
			}
		case roll < 780:
			repErr := repCl.InvalidateAttr(path(ki))
			refErr := refCl.InvalidateAttr(path(ki))
			if (repErr == nil) != (refErr == nil) {
				t.Fatalf("op %d: InvalidateAttr: replicated err=%v reference err=%v", op, repErr, refErr)
			}
		case roll < 840: // age the leases on both service clocks
			step := time.Duration(r.Intn(3)+1) * 2 * time.Second
			repSvcClock.Advance(step)
			refSvcClock.Advance(step)
		case roll < 880: // recover from any fencing symmetrically
			if err := repCl.Reattach(); err != nil {
				t.Fatal(err)
			}
			if err := refCl.Reattach(); err != nil {
				t.Fatal(err)
			}
		case roll < 950: // topology churn, replicated side only
			repSvc.MigrateStep(r.Intn(16) + 1)
		default:
			ns := repSvc.NodeStats()
			ms := repSvc.MigrationStats()
			eligible := 0
			for _, n := range ns {
				if n.Live && !n.Draining {
					eligible++
				}
			}
			switch ev := r.Intn(3); {
			case ev == 0 && len(ns) < 6:
				repSvc.AddNode()
			case ev == 1 && eligible > 2:
				_ = repSvc.DrainNode(r.Intn(len(ns)))
			case ev == 2 && eligible > 2 && ms.MigratingShards == 0 && ms.PendingEntries == 0:
				id := r.Intn(len(ns))
				if ns[id].Live && !ns[id].Draining {
					_ = repSvc.KillNode(id)
				}
			}
		}
	}

	repSvc.MigrateAll()
	if err := repSvc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	repStats, refStats := repCl.Stats(), refCl.Stats()
	if repStats.Hits != refStats.Hits || repStats.Misses != refStats.Misses {
		t.Errorf("client hit/miss diverge: replicated %d/%d reference %d/%d",
			repStats.Hits, repStats.Misses, refStats.Hits, refStats.Misses)
	}
	if repStats.Fenced != refStats.Fenced {
		t.Errorf("client fenced counts diverge: replicated %d reference %d",
			repStats.Fenced, refStats.Fenced)
	}
	if repStats.Moves == 0 {
		t.Error("topology churned but the replicated client never saw ErrMoved — routing retry untested")
	}
	if refStats.Moves != 0 {
		t.Errorf("reference client saw %d moves on a fixed topology", refStats.Moves)
	}

	// The replicated client's virtual spend differs from the reference
	// (replica fan-out, fallthrough hops, refresh RTTs) but must stay
	// within the fan-out envelope: at most copies x the reference spend
	// plus the observed re-route RTTs — not a runaway.
	if repStats.NetBytes == 0 {
		t.Error("replicated client charged no payload bytes")
	}
}
