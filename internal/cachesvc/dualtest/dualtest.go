// Package dualtest is the differential consistency harness for the
// replicated cache tier: it runs one randomized workload against two
// services simultaneously — the replicated, migrating configuration
// under test and the retained single-node reference — and asserts that
// every observable is identical. The replicated tier is correct by
// construction against the reference, not by spot checks: if
// replication, placement, migration, failure handling or per-replica
// fencing ever change an outcome a client could see, some seed
// diverges and the harness names the exact operation.
//
// Compared observables, per operation: lookup outcomes (present or
// not, and the exact bytes) and mutation error classification (ok /
// fenced / wrong-group). Compared at the end: aggregate hit, miss,
// seed and fenced-write counters, the full logical store contents, and
// the replicated tier's internal replica-agreement invariant
// (identical complete copies, subset-consistent partial copies).
//
// The workload interleaves, under one deterministic seed: reads,
// lease-guarded writes and invalidations, epoch-free seeds, writes
// under deliberately stale (superseded) and expired leases, writes
// under the wrong group's lease, lease re-acquisition and renewal,
// virtual-time advance across the lease TTL, incremental migration
// steps, and topology events (add, drain, kill) on the replicated side
// only — the reference, by definition, has no topology.
//
// Node failure discipline: a kill is only injected when no migration
// is in flight and the surviving eligible set keeps every shard at
// replication factor, so the workload never destroys the last complete
// copy of a shard — cached-entry loss is legitimate cache behaviour
// but observable (a hit becomes a miss), and the point here is to pin
// the cases that must be equivalent. LostShards is asserted zero.
package dualtest

import (
	"bytes"
	"fmt"
	"time"

	"cntr/internal/cachesvc"
	"cntr/internal/sim"
)

// Options configures one differential run.
type Options struct {
	// Seed drives every random choice (key selection, op mix, topology
	// event timing). Same seed, same run, bit for bit.
	Seed uint64
	// Nodes and Replicas configure the replicated side (the reference
	// is always one node, zero replicas).
	Nodes    int
	Replicas int
	// Ops is the workload length (default 4000).
	Ops int
	// Keys is the key-pool size (default 160).
	Keys int
	// MaxNodes caps AddNode growth (default Nodes+3).
	MaxNodes int
}

// Result summarizes what one run exercised, so tests can assert the
// workload actually covered the interesting machinery.
type Result struct {
	Ops, Gets, Hits, Puts, Invals, Seeds int
	StaleWrites, ExpiredWrites           int
	WrongGroupWrites                     int
	Fenced                               int64
	Reacquires, Renews, ClockAdvances    int
	AddNodes, Drains, Kills              int
	MigrateSteps                         int
	ShardsMoved                          int64
	FallthroughHits                      int64
	EntriesCopied                        int64
}

type side struct {
	svc    *cachesvc.Service
	clock  *sim.Clock
	leases map[int]cachesvc.Lease
	stale  []cachesvc.Lease // superseded grants, kept to write with
}

func newSide(nodes, replicas, shards, groups int) *side {
	clock := sim.NewClock()
	return &side{
		svc: cachesvc.New(cachesvc.Options{
			Shards:   shards,
			Groups:   groups,
			Nodes:    nodes,
			Replicas: replicas,
			Clock:    clock,
			// Ample capacity: eviction order is an implementation detail
			// the two sides may legitimately disagree on, so the
			// equivalence regime is eviction-free (asserted below).
			ShardCapacity: 1 << 30,
		}),
		clock:  clock,
		leases: make(map[int]cachesvc.Lease),
	}
}

func (sd *side) acquire(group int) error {
	if old, ok := sd.leases[group]; ok {
		sd.stale = append(sd.stale, old)
	}
	l, err := sd.svc.Acquire("dual-mount", group)
	if err != nil {
		return err
	}
	sd.leases[group] = l
	return nil
}

// classify folds a mutation error into the observable classes the two
// sides must agree on.
func classify(err error) string {
	switch err {
	case nil:
		return "ok"
	case cachesvc.ErrFenced:
		return "fenced"
	case cachesvc.ErrWrongGroup:
		return "wronggroup"
	default:
		return fmt.Sprintf("other(%v)", err)
	}
}

// Run executes one differential workload and returns what it covered.
// A non-nil error is a divergence: the replicated tier produced an
// observable the single-node reference did not.
func Run(opts Options) (Result, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.Replicas < 0 {
		opts.Replicas = 1
	}
	if opts.Ops <= 0 {
		opts.Ops = 4000
	}
	if opts.Keys <= 0 {
		opts.Keys = 160
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = opts.Nodes + 3
	}
	const shards, groups = 16, 4

	var res Result
	r := sim.NewRand(opts.Seed)
	rep := newSide(opts.Nodes, opts.Replicas, shards, groups)
	ref := newSide(1, 0, shards, groups)

	for g := 0; g < groups; g++ {
		if err := rep.acquire(g); err != nil {
			return res, fmt.Errorf("replicated acquire: %w", err)
		}
		if err := ref.acquire(g); err != nil {
			return res, fmt.Errorf("reference acquire: %w", err)
		}
	}

	// Key suffixes carry hash entropy: short sequential suffixes clump
	// onto a few ring arcs, which would leave most shards unexercised.
	kr := sim.NewRand(opts.Seed ^ 0x9e3779b97f4a7c15)
	keyPool := make([]cachesvc.Key, opts.Keys)
	for i := range keyPool {
		keyPool[i] = cachesvc.Key(fmt.Sprintf("c:dual-%016x", kr.Uint64()))
	}
	key := func(i int) cachesvc.Key { return keyPool[i] }
	val := func(k, generation int) []byte {
		n := 64 + (k*37+generation*11)%192
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(k + generation + i)
		}
		return b
	}
	gen := make([]int, opts.Keys)

	// mutate applies one lease-guarded mutation to both sides and
	// checks the error classes agree. inval selects Invalidate vs Put.
	mutate := func(op int, repL, refL cachesvc.Lease, k cachesvc.Key, v []byte, inval bool) error {
		var repErr, refErr error
		if inval {
			repErr = rep.svc.Invalidate(repL, k)
			refErr = ref.svc.Invalidate(refL, k)
		} else {
			repErr = rep.svc.Put(repL, k, v)
			refErr = ref.svc.Put(refL, k, v)
		}
		if classify(repErr) != classify(refErr) {
			return fmt.Errorf("op %d: mutation of %q: replicated=%s reference=%s",
				op, k, classify(repErr), classify(refErr))
		}
		if classify(repErr) == "fenced" {
			res.Fenced++
		}
		return nil
	}

	for op := 0; op < opts.Ops; op++ {
		ki := r.Intn(opts.Keys)
		k := key(ki)
		group := rep.svc.GroupOf(k)
		roll := r.Intn(1000)
		switch {
		case roll < 350: // read
			res.Gets++
			repVal, repOK := rep.svc.Get(k)
			refVal, refOK := ref.svc.Get(k)
			if repOK != refOK {
				return res, fmt.Errorf("op %d: get %q: replicated ok=%v reference ok=%v",
					op, k, repOK, refOK)
			}
			if repOK {
				res.Hits++
				if !bytes.Equal(repVal, refVal) {
					return res, fmt.Errorf("op %d: get %q: value bytes diverge", op, k)
				}
			}
		case roll < 600: // lease-guarded write with the current grants
			res.Puts++
			gen[ki]++
			v := val(ki, gen[ki])
			if err := mutate(op, rep.leases[group], ref.leases[group], k, v, false); err != nil {
				return res, err
			}
		case roll < 660: // invalidate
			res.Invals++
			if err := mutate(op, rep.leases[group], ref.leases[group], k, nil, true); err != nil {
				return res, err
			}
		case roll < 710: // epoch-free administrative seed
			res.Seeds++
			gen[ki]++
			v := val(ki, gen[ki])
			rep.svc.Seed(k, v)
			ref.svc.Seed(k, v)
		case roll < 770: // write under a superseded epoch: must fence on every copy
			if len(rep.stale) == 0 {
				continue
			}
			res.StaleWrites++
			i := r.Intn(len(rep.stale))
			repL, refL := rep.stale[i], ref.stale[i]
			// The stale lease's group rarely matches this key's group —
			// both sides must then agree on wronggroup instead of fenced.
			if repL.Group != rep.svc.GroupOf(k) {
				res.WrongGroupWrites++
			}
			if err := mutate(op, repL, refL, k, val(ki, gen[ki]), false); err != nil {
				return res, err
			}
		case roll < 820: // advance virtual time (lease aging, expiry chaos)
			res.ClockAdvances++
			// Up to 1.25x the 5s default TTL per step, so expiry lands at,
			// before, and exactly on the deadline across a run.
			step := time.Duration(r.Intn(5)+1) * (5 * time.Second / 4)
			rep.clock.Advance(step)
			ref.clock.Advance(step)
		case roll < 850: // write with whatever grant we hold — possibly expired
			res.ExpiredWrites++
			if err := mutate(op, rep.leases[group], ref.leases[group], k, val(ki, gen[ki]), false); err != nil {
				return res, err
			}
		case roll < 890: // re-acquire one group (stash the superseded grant)
			res.Reacquires++
			g := r.Intn(groups)
			if err := rep.acquire(g); err != nil {
				return res, err
			}
			if err := ref.acquire(g); err != nil {
				return res, err
			}
		case roll < 920: // renew all grants; verdicts must agree
			res.Renews++
			for g := 0; g < groups; g++ {
				repRenewed, repErr := rep.svc.Renew(rep.leases[g])
				refRenewed, refErr := ref.svc.Renew(ref.leases[g])
				if (repErr == nil) != (refErr == nil) {
					return res, fmt.Errorf("op %d: renew group %d: replicated err=%v reference err=%v",
						op, g, repErr, refErr)
				}
				if repErr == nil {
					rep.leases[g], ref.leases[g] = repRenewed, refRenewed
				}
			}
		case roll < 960: // incremental migration progress (replicated only)
			res.MigrateSteps++
			rep.svc.MigrateStep(r.Intn(8) + 1)
		default: // topology event (replicated only)
			ms := rep.svc.MigrationStats()
			ns := rep.svc.NodeStats()
			eligible := 0
			for _, n := range ns {
				if n.Live && !n.Draining {
					eligible++
				}
			}
			// pick chooses among the currently eligible (live,
			// non-draining) nodes, starting from a random rotation so the
			// choice stays seed-driven.
			pick := func() int {
				off := r.Intn(len(ns))
				for i := 0; i < len(ns); i++ {
					id := (off + i) % len(ns)
					if ns[id].Live && !ns[id].Draining {
						return id
					}
				}
				return -1
			}
			switch ev := r.Intn(3); {
			case ev == 0 && len(ns) < opts.MaxNodes:
				res.AddNodes++
				rep.svc.AddNode()
			case ev == 1 && eligible > opts.Replicas+1:
				if id := pick(); id >= 0 {
					res.Drains++
					if err := rep.svc.DrainNode(id); err != nil {
						return res, fmt.Errorf("op %d: drain: %v", op, err)
					}
				}
			case ev == 2 && eligible > opts.Replicas+1:
				// Kill only with no handoff in flight and headroom in the
				// eligible set, so every shard keeps a complete copy: any
				// pending handoff is driven to completion first (the "kill
				// right after settle" interleaving).
				if ms.MigratingShards > 0 || ms.PendingEntries > 0 {
					rep.svc.MigrateAll()
				}
				if id := pick(); id >= 0 {
					res.Kills++
					if err := rep.svc.KillNode(id); err != nil {
						return res, fmt.Errorf("op %d: kill: %v", op, err)
					}
				}
			}
		}
		// The replica-agreement invariant holds at every step, not just
		// at the end; checking a sample keeps the run fast.
		if op%251 == 0 {
			if err := rep.svc.CheckConsistency(); err != nil {
				return res, fmt.Errorf("op %d: %w", op, err)
			}
		}
	}
	res.Ops = opts.Ops

	// Drain the migration queue, then compare final state.
	rep.svc.MigrateAll()
	if err := rep.svc.CheckConsistency(); err != nil {
		return res, fmt.Errorf("final: %w", err)
	}

	repStats, refStats := rep.svc.Stats(), ref.svc.Stats()
	if repStats.Evictions != 0 || refStats.Evictions != 0 {
		return res, fmt.Errorf("equivalence regime violated: evictions replicated=%d reference=%d",
			repStats.Evictions, refStats.Evictions)
	}
	if repStats.Hits != refStats.Hits || repStats.Misses != refStats.Misses {
		return res, fmt.Errorf("hit/miss counters diverge: replicated %d/%d reference %d/%d",
			repStats.Hits, repStats.Misses, refStats.Hits, refStats.Misses)
	}
	if repStats.FencedWrites != refStats.FencedWrites {
		return res, fmt.Errorf("fenced-write counters diverge: replicated %d reference %d",
			repStats.FencedWrites, refStats.FencedWrites)
	}
	if repStats.Seeds != refStats.Seeds {
		return res, fmt.Errorf("seed counters diverge: replicated %d reference %d",
			repStats.Seeds, refStats.Seeds)
	}

	repSnap, refSnap := rep.svc.Snapshot(), ref.svc.Snapshot()
	if len(repSnap) != len(refSnap) {
		return res, fmt.Errorf("final contents diverge: replicated holds %d keys, reference %d",
			len(repSnap), len(refSnap))
	}
	for k, v := range refSnap {
		rv, ok := repSnap[k]
		if !ok {
			return res, fmt.Errorf("final contents diverge: %q missing from replicated tier", k)
		}
		if !bytes.Equal(v, rv) {
			return res, fmt.Errorf("final contents diverge: %q differs", k)
		}
	}

	ms := rep.svc.MigrationStats()
	if ms.LostShards != 0 {
		return res, fmt.Errorf("workload lost %d shards despite the kill discipline", ms.LostShards)
	}
	res.ShardsMoved = ms.ShardsMoved
	res.FallthroughHits = ms.FallthroughHits
	res.EntriesCopied = ms.EntriesCopied
	return res, nil
}
