package cachesvc

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Errors returned by the node-addressed data plane and topology ops.
var (
	// ErrMoved tells a client its cached placement version is stale (or
	// it addressed a dead node): refresh Placement and retry.
	ErrMoved = errors.New("cachesvc: placement moved")
	// ErrUnknownNode rejects topology ops naming a node id never added.
	ErrUnknownNode = errors.New("cachesvc: unknown node")
	// ErrNodeDown rejects topology ops on a node already killed.
	ErrNodeDown = errors.New("cachesvc: node is down")
	// ErrLastNode refuses to drain the last node eligible to own shards.
	ErrLastNode = errors.New("cachesvc: cannot drain last eligible node")
)

// node is one cache node: its copies of the shards placement assigns
// it (plus any it is handing off), a sim-cost distance, and per-node
// counters. Counter fields are atomics so data-plane reads under the
// topo read-lock never serialize on a node-wide mutex.
type node struct {
	id       int
	live     bool
	draining bool
	// distance scales this node's network cost relative to the cost
	// model's NetRTT/NetPerKB (1.0 = one intra-cluster hop). Reads
	// prefer the lowest-distance live replica.
	distance float64
	stores   map[int]*store

	hits, misses, puts, invals atomic.Int64
	fenced, evictions          atomic.Int64
}

func newNode(id int) *node {
	return &node{id: id, live: true, distance: 1, stores: make(map[int]*store)}
}

// NodeStats is one node's slice of the service counters.
type NodeStats struct {
	ID       int
	Live     bool
	Draining bool
	Distance float64
	// Shards is the number of shard copies the node currently holds
	// (owned plus mid-handoff).
	Shards                            int
	Hits, Misses, Puts, Invalidations int64
	// FencedWrites counts fenced mutations dropped at this node's
	// copies: a stale-epoch write is rejected on the primary and every
	// replica, and each copy counts its own drop (so the per-node sum is
	// Stats.FencedWrites times the copy count).
	FencedWrites int64
	Evictions    int64
	Entries      int64
	Bytes        int64
}

// NodeStats returns per-node counter snapshots, in node-id order.
// Dead nodes stay listed (Live=false) with their historical counters.
func (s *Service) NodeStats() []NodeStats {
	s.topo.RLock()
	defer s.topo.RUnlock()
	out := make([]NodeStats, 0, len(s.nodes))
	for _, nd := range s.nodes {
		ns := NodeStats{
			ID:            nd.id,
			Live:          nd.live,
			Draining:      nd.draining,
			Distance:      nd.distance,
			Shards:        len(nd.stores),
			Hits:          nd.hits.Load(),
			Misses:        nd.misses.Load(),
			Puts:          nd.puts.Load(),
			Invalidations: nd.invals.Load(),
			FencedWrites:  nd.fenced.Load(),
			Evictions:     nd.evictions.Load(),
		}
		for _, st := range nd.stores {
			st.mu.Lock()
			ns.Entries += int64(len(st.entries))
			ns.Bytes += st.bytes
			st.mu.Unlock()
		}
		out = append(out, ns)
	}
	return out
}

// PlacementInfo is the routing table a client caches: for each shard
// the owning node ids (primary first), the per-node distances, and the
// version that every node-addressed call must echo back. Any topology
// change bumps Version; a call carrying a stale version gets ErrMoved.
type PlacementInfo struct {
	Version  uint64
	Owners   [][]int
	Live     []bool
	Distance []float64
}

// Placement returns the current routing table.
func (s *Service) Placement() PlacementInfo {
	s.topo.RLock()
	defer s.topo.RUnlock()
	info := PlacementInfo{
		Version:  s.placeVersion,
		Owners:   make([][]int, len(s.placement)),
		Live:     make([]bool, len(s.nodes)),
		Distance: make([]float64, len(s.nodes)),
	}
	for sh, owners := range s.placement {
		info.Owners[sh] = append([]int(nil), owners...)
	}
	for i, nd := range s.nodes {
		info.Live[i] = nd.live
		info.Distance[i] = nd.distance
	}
	return info
}

// PlacementVersion returns the current placement version without
// copying the table.
func (s *Service) PlacementVersion() uint64 {
	s.topo.RLock()
	defer s.topo.RUnlock()
	return s.placeVersion
}

// NumNodes returns the number of nodes ever added (dead ones
// included — node ids are never reused).
func (s *Service) NumNodes() int {
	s.topo.RLock()
	defer s.topo.RUnlock()
	return len(s.nodes)
}

// placementScore ranks node candidates for a shard by rendezvous
// (highest-random-weight) hashing: each (shard, node) pair gets an
// independent deterministic score and the top R+1 scorers own the
// shard. Adding a node steals only the shards it now wins; removing
// one reassigns only the shards it owned — the minimal-movement
// property the placement test pins. The FNV digest is run through a
// murmur-style finalizer: raw FNV of these short near-identical
// strings orders consecutive node ids non-uniformly (one node of a
// 3-set wins half the shards), and rendezvous needs independent score
// ORDER, not just well-spread values.
func placementScore(shard, nodeID int) uint64 {
	x := hash64(fmt.Sprintf("place|shard-%d|node-%d", shard, nodeID))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ownersForLocked computes the owner list (primary first) for a shard
// from the currently eligible nodes. Callers hold topo.
func (s *Service) ownersForLocked(sh int) []int {
	type cand struct {
		id    int
		score uint64
	}
	cands := make([]cand, 0, len(s.nodes))
	for _, nd := range s.nodes {
		if nd.live && !nd.draining {
			cands = append(cands, cand{nd.id, placementScore(sh, nd.id)})
		}
	}
	for i := 1; i < len(cands); i++ { // insertion sort: tiny n
		for j := i; j > 0 && (cands[j].score > cands[j-1].score ||
			(cands[j].score == cands[j-1].score && cands[j].id < cands[j-1].id)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	n := s.opts.Replicas + 1
	if n > len(cands) {
		n = len(cands)
	}
	owners := make([]int, n)
	for i := 0; i < n; i++ {
		owners[i] = cands[i].id
	}
	return owners
}

// AddNode grows the node set by one node and starts migrating the
// shards the new node now owns. Returns the new node's id. Ownership
// flips immediately (placement version bump); the data moves via
// MigrateStep/MigrateAll and read fallthrough, with old owners serving
// until every new copy is complete.
func (s *Service) AddNode() int {
	s.topo.Lock()
	defer s.topo.Unlock()
	id := len(s.nodes)
	s.nodes = append(s.nodes, newNode(id))
	s.recomputeLocked()
	s.settleLocked()
	return id
}

// DrainNode marks a node ineligible for ownership and migrates its
// shards away. The node stays live — it keeps serving reads and
// taking writes for shards it still holds — until migration completes
// and settle drops its copies; the caller can then KillNode it safely.
func (s *Service) DrainNode(id int) error {
	s.topo.Lock()
	defer s.topo.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return ErrUnknownNode
	}
	nd := s.nodes[id]
	if !nd.live {
		return ErrNodeDown
	}
	if nd.draining {
		return nil
	}
	eligible := 0
	for _, other := range s.nodes {
		if other.live && !other.draining && other.id != id {
			eligible++
		}
	}
	if eligible == 0 {
		return ErrLastNode
	}
	nd.draining = true
	s.recomputeLocked()
	s.settleLocked()
	return nil
}

// KillNode simulates a node failure: the node and its shard copies
// vanish. Shards it owned are re-placed; any copy mid-migration from
// it re-sources from a surviving complete copy. If the killed node
// held a shard's only complete copy, the shard's cached entries are
// lost (LostShards counts it) — the tier is a cache, so the cost is
// re-fetching from the origin, never wrong data. Leases are untouched:
// epochs are service-global control-plane state.
func (s *Service) KillNode(id int) error {
	s.topo.Lock()
	defer s.topo.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return ErrUnknownNode
	}
	nd := s.nodes[id]
	if !nd.live {
		return ErrNodeDown
	}
	nd.live = false
	nd.draining = false
	nd.stores = make(map[int]*store)
	s.recomputeLocked()
	s.settleLocked()
	return nil
}

// SetNodeDistance sets a node's network-cost multiplier (1.0 = one
// intra-cluster hop). Reads route to the lowest-distance live replica;
// cachecl charges the mount's clock accordingly.
func (s *Service) SetNodeDistance(id int, d float64) error {
	s.topo.Lock()
	defer s.topo.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return ErrUnknownNode
	}
	if d < 0 {
		d = 0
	}
	s.nodes[id].distance = d
	return nil
}

// NodeGet serves a read addressed at a specific node, as routed by a
// placement-aware client holding placement version. hops counts extra
// cross-node transfers (handoff fallthrough) the client must charge
// beyond its own hop to the addressed node.
func (s *Service) NodeGet(nodeID int, version uint64, key Key) (val []byte, ok bool, hops int, err error) {
	s.topo.RLock()
	defer s.topo.RUnlock()
	if version != s.placeVersion {
		return nil, false, 0, ErrMoved
	}
	if nodeID < 0 || nodeID >= len(s.nodes) || !s.nodes[nodeID].live {
		return nil, false, 0, ErrMoved
	}
	val, ok, hops = s.getFromLocked(s.nodes[nodeID], s.ShardOf(key), key)
	return val, ok, hops, nil
}

// NodePut applies a lease-guarded write addressed at the key's primary
// by a placement-aware client. copies reports how many stores the
// write landed on (primary + replicas + handoff sources), so the
// client can charge replication fan-out. Fencing is checked before
// placement: a stale-epoch write is dropped (and counted per copy)
// even when the client's placement is also stale — the fence is the
// stronger guarantee.
func (s *Service) NodePut(nodeID int, version uint64, l Lease, key Key, val []byte) (copies int, err error) {
	if err := s.admit(l, key); err != nil {
		return 0, err
	}
	s.topo.RLock()
	defer s.topo.RUnlock()
	if version != s.placeVersion {
		return 0, ErrMoved
	}
	if nodeID < 0 || nodeID >= len(s.nodes) || !s.nodes[nodeID].live {
		return 0, ErrMoved
	}
	return s.applyLocked(s.ShardOf(key), key, val), nil
}
