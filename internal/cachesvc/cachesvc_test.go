package cachesvc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/sim"
)

func newTestService(ttl time.Duration) (*Service, *sim.Clock) {
	clock := sim.NewClock()
	return New(Options{Shards: 8, Groups: 2, LeaseTTL: ttl, Clock: clock}), clock
}

func mustAcquire(t *testing.T, s *Service, mount string, group int) Lease {
	t.Helper()
	l, err := s.Acquire(mount, group)
	if err != nil {
		t.Fatalf("acquire %s/%d: %v", mount, group, err)
	}
	return l
}

// leaseFor acquires the lease guarding key's shard group.
func leaseFor(t *testing.T, s *Service, mount string, key Key) Lease {
	t.Helper()
	return mustAcquire(t, s, mount, s.GroupOf(key))
}

func TestGetPutInvalidate(t *testing.T) {
	s, _ := newTestService(0)
	key := AttrKey("/etc/passwd")
	l := leaseFor(t, s, "m1", key)

	if _, ok := s.Get(key); ok {
		t.Fatal("empty service reported a hit")
	}
	if err := s.Put(l, key, []byte("attr")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != "attr" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if err := s.Invalidate(l, key); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("entry survived Invalidate")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingDeterministicAndCovering: the consistent-hash ring maps every
// key to a valid shard, identically across service instances, and
// spreads a key population over all shards.
func TestRingDeterministicAndCovering(t *testing.T) {
	a, _ := newTestService(0)
	b, _ := newTestService(0)
	seen := make(map[int]bool)
	for i := 0; i < 4096; i++ {
		key := ChunkKey(blobstore.Ref(fmt.Sprintf("ref-%04d", i)))
		sa, sb := a.ShardOf(key), b.ShardOf(key)
		if sa != sb {
			t.Fatalf("key %d: shard %d vs %d across instances", i, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Fatalf("key %d: shard %d out of range", i, sa)
		}
		seen[sa] = true
		if g := a.GroupOf(key); g != sa%2 {
			t.Fatalf("group of shard %d = %d", sa, g)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("4096 keys landed on only %d/8 shards", len(seen))
	}
}

// TestLRUEvictionUnderCapacity: a shard over its byte capacity evicts
// least-recently-used entries first and keeps accounting consistent.
func TestLRUEvictionUnderCapacity(t *testing.T) {
	clock := sim.NewClock()
	// One shard, one group: every key shares the LRU so the eviction
	// order is fully observable.
	s := New(Options{Shards: 1, Groups: 1, ShardCapacity: 4096, Clock: clock})
	l := mustAcquire(t, s, "m1", 0)
	val := make([]byte, 1000)
	var keys []Key
	for i := 0; i < 4; i++ {
		k := ChunkKey(blobstore.Ref(fmt.Sprintf("chunk-%d", i)))
		keys = append(keys, k)
		if err := s.Put(l, k, val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	if err := s.Put(l, ChunkKey("chunk-overflow"), val); err != nil {
		t.Fatal(err)
	}
	if s.Contains(keys[1]) {
		t.Fatal("LRU victim survived eviction")
	}
	if !s.Contains(keys[0]) {
		t.Fatal("recently-used entry was evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Bytes > 4096 {
		t.Fatalf("shard over capacity after eviction: %d bytes", st.Bytes)
	}
}

// TestFencingStaleEpoch: a mutation carrying a superseded epoch is
// rejected and counted, and the entry it tried to write never lands.
func TestFencingStaleEpoch(t *testing.T) {
	s, _ := newTestService(0)
	key := ChunkKey("deadbeef")
	old := leaseFor(t, s, "m1", key)
	// The mount "reconnects": a fresh acquisition mints a new epoch.
	fresh := leaseFor(t, s, "m1", key)
	if fresh.Epoch != old.Epoch+1 {
		t.Fatalf("reacquire epoch = %d, want %d", fresh.Epoch, old.Epoch+1)
	}
	if err := s.Put(old, key, []byte("stale")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch Put = %v, want ErrFenced", err)
	}
	if s.Contains(key) {
		t.Fatal("fenced write landed in the cache")
	}
	if err := s.Put(fresh, key, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.FencedWrites != 1 {
		t.Fatalf("FencedWrites = %d, want 1", st.FencedWrites)
	}
}

// TestLeaseExpiryExactlyAtDeadline: a lease is valid strictly before
// its deadline and fenced at exactly the deadline instant.
func TestLeaseExpiryExactlyAtDeadline(t *testing.T) {
	s, clock := newTestService(time.Second)
	key := ChunkKey("feed")
	l := leaseFor(t, s, "m1", key)

	clock.AdvanceTo(l.Expires - 1)
	if err := s.Put(l, key, []byte("x")); err != nil {
		t.Fatalf("Put one tick before deadline: %v", err)
	}
	clock.AdvanceTo(l.Expires) // now == deadline: expired
	if err := s.Put(l, key, []byte("y")); !errors.Is(err, ErrFenced) {
		t.Fatalf("Put at deadline = %v, want ErrFenced", err)
	}
	if st := s.Stats(); st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st.Expirations)
	}
}

// TestRenewAfterExpire: renewal cannot resurrect an expired lease; the
// holder must re-acquire and comes back with a higher epoch.
func TestRenewAfterExpire(t *testing.T) {
	s, clock := newTestService(time.Second)
	l := mustAcquire(t, s, "m1", 0)

	// An in-deadline renew extends the lease and keeps the epoch.
	clock.Advance(500 * time.Millisecond)
	renewed, err := s.Renew(l)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.Epoch != l.Epoch || renewed.Expires <= l.Expires {
		t.Fatalf("renew = %+v from %+v", renewed, l)
	}

	clock.AdvanceTo(renewed.Expires)
	if _, err := s.Renew(renewed); !errors.Is(err, ErrExpired) {
		t.Fatalf("renew-after-expire = %v, want ErrExpired", err)
	}
	// Only Acquire recovers, with a fresh epoch.
	again := mustAcquire(t, s, "m1", 0)
	if again.Epoch <= renewed.Epoch {
		t.Fatalf("reacquired epoch %d not above expired epoch %d", again.Epoch, renewed.Epoch)
	}
}

// TestDoubleRelease: the second release of the same lease fails with
// ErrNotHeld, as does renewing it.
func TestDoubleRelease(t *testing.T) {
	s, _ := newTestService(0)
	l := mustAcquire(t, s, "m1", 1)
	if err := s.Release(l); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(l); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
	if _, err := s.Renew(l); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("renew after release = %v, want ErrNotHeld", err)
	}
	if st := s.Stats(); st.LeasesActive != 0 {
		t.Fatalf("LeasesActive = %d after release", st.LeasesActive)
	}
}

// TestWrongGroupRejected: a lease only admits keys in its own shard
// group, and out-of-range groups cannot be acquired.
func TestWrongGroupRejected(t *testing.T) {
	s, _ := newTestService(0)
	key := ChunkKey("cafe")
	other := (s.GroupOf(key) + 1) % s.NumGroups()
	l := mustAcquire(t, s, "m1", other)
	if err := s.Put(l, key, []byte("x")); !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("cross-group Put = %v, want ErrWrongGroup", err)
	}
	if _, err := s.Acquire("m1", s.NumGroups()); !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("out-of-range Acquire = %v, want ErrWrongGroup", err)
	}
}

// TestSeedAndReset: administrative seeds need no lease; Reset drops
// entries but keeps epochs so fencing survives a cache flush.
func TestSeedAndReset(t *testing.T) {
	s, _ := newTestService(0)
	key := ChunkKey("0123")
	old := leaseFor(t, s, "m1", key)
	fresh := leaseFor(t, s, "m1", key) // supersedes old

	s.Seed(key, []byte("chunk"))
	if !s.Contains(key) {
		t.Fatal("seeded entry missing")
	}
	s.Reset()
	if s.Contains(key) {
		t.Fatal("entry survived Reset")
	}
	if err := s.Put(old, key, []byte("stale")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale epoch admitted after Reset: %v", err)
	}
	if err := s.Put(fresh, key, []byte("good")); err != nil {
		t.Fatalf("current epoch rejected after Reset: %v", err)
	}
}

// TestHitRatioZeroTraffic mirrors the DedupRatio guard: no lookups, no
// NaN.
func TestHitRatioZeroTraffic(t *testing.T) {
	s, _ := newTestService(0)
	if r := s.Stats().HitRatio(); r != 0 {
		t.Fatalf("idle HitRatio = %v", r)
	}
}
