package cachesvc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cntr/internal/sim"
)

// TestMigrationRaceUnderLoad drives Get/Put/Acquire/Seed traffic from
// several goroutines while the main goroutine churns topology (add,
// kill) and steps migration concurrently. Run under -race in CI; the
// assertions here are liveness (ops completed), legality (only the
// documented error classes), and the replica-agreement invariant once
// the dust settles.
func TestMigrationRaceUnderLoad(t *testing.T) {
	svc := New(Options{Nodes: 3, Replicas: 1, ShardCapacity: 1 << 30})
	keys := testKeys("race", 128)
	for _, k := range keys {
		svc.Seed(k, []byte("seed"))
	}

	const workers = 8
	var stop atomic.Bool
	var opsDone atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.NewRand(uint64(w + 1))
			mount := fmt.Sprintf("racer-%d", w)
			leases := make(map[int]Lease)
			for g := 0; g < svc.NumGroups(); g++ {
				l, err := svc.Acquire(mount, g)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				leases[g] = l
			}
			for !stop.Load() {
				k := keys[r.Intn(len(keys))]
				switch r.Intn(10) {
				case 0, 1, 2, 3:
					svc.Get(k)
				case 4, 5, 6:
					l := leases[svc.GroupOf(k)]
					if err := svc.Put(l, k, []byte(mount)); err != nil && err != ErrFenced {
						t.Errorf("put: unexpected error %v", err)
						return
					}
				case 7:
					svc.Seed(k, []byte("reseed"))
				case 8:
					g := r.Intn(svc.NumGroups())
					l, err := svc.Acquire(mount, g)
					if err != nil {
						t.Errorf("re-acquire: %v", err)
						return
					}
					leases[g] = l
				default:
					svc.Contains(k)
				}
				opsDone.Add(1)
			}
		}(w)
	}

	// Topology churn on the main goroutine, concurrent with the load:
	// keep cycling add → migrate → kill until the workers have pushed a
	// meaningful number of ops through the churning service.
	for round := 0; opsDone.Load() < 20000 || round < 6; round++ {
		id := svc.AddNode()
		for i := 0; i < 50; i++ {
			svc.MigrateStep(8)
		}
		svc.MigrateAll()
		// The first rounds grow the fleet; after that each added node is
		// killed again so the set stays bounded however long the load
		// takes to hit its op target.
		if round >= 3 {
			if err := svc.KillNode(id); err != nil {
				t.Fatalf("kill %d: %v", id, err)
			}
			svc.MigrateAll()
		}
	}
	stop.Store(true)
	wg.Wait()

	svc.MigrateAll()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if opsDone.Load() == 0 {
		t.Fatal("workers made no progress under migration churn")
	}
	if ms := svc.MigrationStats(); ms.ShardsMoved == 0 {
		t.Fatal("churn moved no shards")
	}
}

// TestDrainRaceUnderLoad races DrainNode + incremental migration
// against concurrent reads and lease-guarded writes, then verifies the
// drained node ends empty with no entry lost.
func TestDrainRaceUnderLoad(t *testing.T) {
	svc := New(Options{Nodes: 4, Replicas: 1, ShardCapacity: 1 << 30})
	keys := testKeys("drain-race", 128)
	for _, k := range keys {
		svc.Seed(k, []byte("seed"))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.NewRand(uint64(100 + w))
			mount := fmt.Sprintf("drainer-%d", w)
			leases := make(map[int]Lease)
			for g := 0; g < svc.NumGroups(); g++ {
				l, err := svc.Acquire(mount, g)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				leases[g] = l
			}
			for !stop.Load() {
				k := keys[r.Intn(len(keys))]
				if r.Intn(2) == 0 {
					if _, ok := svc.Get(k); !ok {
						t.Errorf("key %q missed during drain — fallthrough failed", k)
						return
					}
				} else {
					l := leases[svc.GroupOf(k)]
					if err := svc.Put(l, k, []byte(mount)); err != nil && err != ErrFenced {
						t.Errorf("put: unexpected error %v", err)
						return
					}
				}
			}
		}(w)
	}

	for _, id := range []int{1, 3} {
		if err := svc.DrainNode(id); err != nil {
			t.Fatalf("drain %d: %v", id, err)
		}
		for svc.MigrateStep(4) {
		}
	}
	stop.Store(true)
	wg.Wait()

	svc.MigrateAll()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 3} {
		if ns := svc.NodeStats()[id]; ns.Shards != 0 {
			t.Fatalf("drained node %d still holds %d shards", id, ns.Shards)
		}
	}
	for _, k := range keys {
		if _, ok := svc.Get(k); !ok {
			t.Fatalf("key %q lost across the drain", k)
		}
	}
}
