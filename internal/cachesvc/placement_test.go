package cachesvc

import (
	"fmt"
	"testing"

	"cntr/internal/sim"
)

// topoEvent is one step of a seed-driven topology history, replayable
// so determinism can be checked against a twin service.
type topoEvent struct {
	kind string // "add", "drain", "kill"
	node int
}

func applyEvent(svc *Service, ev topoEvent) {
	switch ev.kind {
	case "add":
		svc.AddNode()
	case "drain":
		if err := svc.DrainNode(ev.node); err != nil {
			panic(fmt.Sprintf("drain %d: %v", ev.node, err))
		}
	case "kill":
		if err := svc.KillNode(ev.node); err != nil {
			panic(fmt.Sprintf("kill %d: %v", ev.node, err))
		}
	}
}

// eligibleNodes returns ids of live, non-draining nodes.
func eligibleNodes(svc *Service) []int {
	var out []int
	for _, ns := range svc.NodeStats() {
		if ns.Live && !ns.Draining {
			out = append(out, ns.ID)
		}
	}
	return out
}

// checkCovering asserts the structural placement invariants: every
// shard has min(R+1, eligible) distinct owners, all of them eligible.
func checkCovering(t *testing.T, svc *Service, replicas int) {
	t.Helper()
	info := svc.Placement()
	eligible := eligibleNodes(svc)
	elig := make(map[int]bool)
	for _, id := range eligible {
		elig[id] = true
	}
	want := replicas + 1
	if want > len(eligible) {
		want = len(eligible)
	}
	for sh, owners := range info.Owners {
		if len(owners) != want {
			t.Fatalf("shard %d: %d owners, want %d (eligible=%d)", sh, len(owners), want, len(eligible))
		}
		seen := make(map[int]bool)
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("shard %d: duplicate owner %d", sh, id)
			}
			seen[id] = true
			if !elig[id] {
				t.Fatalf("shard %d: owner %d is not eligible (dead or draining)", sh, id)
			}
		}
	}
}

// TestPlacementProperties is the 20-seed property pin on the
// rendezvous placement: deterministic (a twin service replaying the
// same topology history computes the identical table), covering (every
// shard keeps min(R+1, eligible) distinct eligible owners), and
// minimal-movement — adding a node only ever inserts that node into a
// shard's owner list (survivors keep their relative order) and touches
// at most shards*(R+1)/eligible + eps shards; removing a node only
// remaps shards it owned, with the survivors' order preserved.
func TestPlacementProperties(t *testing.T) {
	const shards = 256
	const eps = 32 // slack over the expected share; scores are deterministic
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := sim.NewRand(seed)
			replicas := r.Intn(3)
			startNodes := replicas + 1 + r.Intn(3)
			opts := Options{Shards: shards, Nodes: startNodes, Replicas: replicas}
			svc := New(opts)
			var history []topoEvent
			checkCovering(t, svc, replicas)

			for step := 0; step < 12; step++ {
				before := svc.Placement()
				eligible := eligibleNodes(svc)
				var ev topoEvent
				switch r.Intn(3) {
				case 0:
					ev = topoEvent{kind: "add"}
				case 1:
					if len(eligible) <= replicas+1 {
						ev = topoEvent{kind: "add"}
					} else {
						ev = topoEvent{kind: "drain", node: eligible[r.Intn(len(eligible))]}
					}
				default:
					if len(eligible) <= replicas+1 {
						ev = topoEvent{kind: "add"}
					} else {
						ev = topoEvent{kind: "kill", node: eligible[r.Intn(len(eligible))]}
					}
				}
				applyEvent(svc, ev)
				history = append(history, ev)
				checkCovering(t, svc, replicas)
				after := svc.Placement()

				switch ev.kind {
				case "add":
					newID := len(after.Live) - 1
					moved := 0
					for sh := range after.Owners {
						if equalInts(after.Owners[sh], before.Owners[sh]) {
							continue
						}
						moved++
						// The only permitted change: insert the new node,
						// keeping the survivors' relative order (the old list
						// minus at most its tail).
						var without []int
						for _, id := range after.Owners[sh] {
							if id != newID {
								without = append(without, id)
							}
						}
						if len(without) == len(after.Owners[sh]) {
							t.Fatalf("shard %d changed owners on add without gaining node %d: %v -> %v",
								sh, newID, before.Owners[sh], after.Owners[sh])
						}
						if !isPrefix(without, before.Owners[sh]) {
							t.Fatalf("shard %d: add disturbed survivor order: %v -> %v",
								sh, before.Owners[sh], after.Owners[sh])
						}
					}
					elig := len(eligibleNodes(svc))
					bound := shards*(replicas+1)/elig + eps
					if moved > bound {
						t.Fatalf("add remapped %d shards, bound %d (replicas=%d eligible=%d)",
							moved, bound, replicas, elig)
					}
				case "drain", "kill":
					for sh := range after.Owners {
						owned := containsInt(before.Owners[sh], ev.node)
						if !owned {
							if !equalInts(after.Owners[sh], before.Owners[sh]) {
								t.Fatalf("shard %d not owned by removed node %d was remapped: %v -> %v",
									sh, ev.node, before.Owners[sh], after.Owners[sh])
							}
							continue
						}
						// Owned shards: the removed node drops out, survivors
						// keep order, one replacement may join at the tail.
						var survivors []int
						for _, id := range before.Owners[sh] {
							if id != ev.node {
								survivors = append(survivors, id)
							}
						}
						if !isPrefix(survivors, after.Owners[sh]) {
							t.Fatalf("shard %d: removal disturbed survivors: %v -> %v",
								sh, before.Owners[sh], after.Owners[sh])
						}
					}
				}
			}

			// Determinism: a twin replaying the same history computes the
			// identical placement at the same version.
			twin := New(opts)
			for _, ev := range history {
				applyEvent(twin, ev)
			}
			a, b := svc.Placement(), twin.Placement()
			if a.Version != b.Version {
				t.Fatalf("twin placement version %d != %d", b.Version, a.Version)
			}
			for sh := range a.Owners {
				if !equalInts(a.Owners[sh], b.Owners[sh]) {
					t.Fatalf("twin shard %d placement %v != %v", sh, b.Owners[sh], a.Owners[sh])
				}
			}
		})
	}
}

// isPrefix reports whether a is a prefix of b.
func isPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
