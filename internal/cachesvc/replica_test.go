package cachesvc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cntr/internal/sim"
)

// ownersOf returns the owner node ids of key's shard.
func ownersOf(svc *Service, key Key) []int {
	return svc.Placement().Owners[svc.ShardOf(key)]
}

// testKeys builds n deterministic keys with enough suffix entropy to
// spread across shards (short sequential suffixes clump on the ring).
func testKeys(prefix string, n int) []Key {
	r := sim.NewRand(hash64(prefix))
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("c:%s-%016x", prefix, r.Uint64()))
	}
	return keys
}

// sumNodeFenced sums the per-node fenced-write counters.
func sumNodeFenced(svc *Service) int64 {
	var sum int64
	for _, ns := range svc.NodeStats() {
		sum += ns.FencedWrites
	}
	return sum
}

// TestFencingMatrixPerReplica is the per-replica fencing pin: across
// replication configurations, a stale-epoch write and an expired-lease
// write are both dropped on the primary AND every replica — the value
// lands on no copy, the service-level counter stays mutation-granular,
// and each hosting node counts its own drop (per-node sum = mutations
// x copies).
func TestFencingMatrixPerReplica(t *testing.T) {
	cases := []struct{ nodes, replicas int }{
		{1, 0}, // the single-node reference
		{2, 1},
		{3, 1},
		{3, 2},
		{4, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("nodes=%d_replicas=%d", tc.nodes, tc.replicas), func(t *testing.T) {
			clock := sim.NewClock()
			svc := New(Options{Nodes: tc.nodes, Replicas: tc.replicas, Clock: clock})
			key := Key("c:fencing-matrix")
			copies := tc.replicas + 1
			if got := len(ownersOf(svc, key)); got != copies {
				t.Fatalf("shard has %d owners, want %d", got, copies)
			}

			// Stale epoch: a newer Acquire supersedes the first grant.
			old, err := svc.Acquire("m", svc.GroupOf(key))
			if err != nil {
				t.Fatal(err)
			}
			cur, err := svc.Acquire("m", svc.GroupOf(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Put(old, key, []byte("stale")); err != ErrFenced {
				t.Fatalf("stale-epoch put: got %v, want ErrFenced", err)
			}
			// Dropped on every copy: no node serves it, by any route.
			if svc.Contains(key) {
				t.Fatal("stale write landed on some copy")
			}
			for _, id := range ownersOf(svc, key) {
				if _, ok, _, err := svc.NodeGet(id, svc.PlacementVersion(), key); err != nil || ok {
					t.Fatalf("node %d: stale write visible (ok=%v err=%v)", id, ok, err)
				}
			}

			// Expired lease: the current grant ages past its deadline.
			clock.Advance(10 * time.Second)
			if err := svc.Put(cur, key, []byte("expired")); err != ErrFenced {
				t.Fatalf("expired-lease put: got %v, want ErrFenced", err)
			}
			if svc.Contains(key) {
				t.Fatal("expired write landed on some copy")
			}

			st := svc.Stats()
			if st.FencedWrites != 2 {
				t.Fatalf("Stats.FencedWrites = %d, want 2 (mutation-granular)", st.FencedWrites)
			}
			if st.Expirations != 1 {
				t.Fatalf("Expirations = %d, want 1", st.Expirations)
			}
			// Per-node: each of the shard's copies counted each drop.
			if got, want := sumNodeFenced(svc), int64(2*copies); got != want {
				t.Fatalf("per-node fenced sum = %d, want %d (2 mutations x %d copies)", got, want, copies)
			}
			for _, ns := range svc.NodeStats() {
				want := int64(0)
				if containsInt(ownersOf(svc, key), ns.ID) {
					want = 2
				}
				if ns.FencedWrites != want {
					t.Fatalf("node %d: FencedWrites = %d, want %d", ns.ID, ns.FencedWrites, want)
				}
			}

			// A fresh grant writes through to every copy.
			fresh, err := svc.Acquire("m", svc.GroupOf(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Put(fresh, key, []byte("good")); err != nil {
				t.Fatalf("fresh put: %v", err)
			}
			for _, id := range ownersOf(svc, key) {
				v, ok, hops, err := svc.NodeGet(id, svc.PlacementVersion(), key)
				if err != nil || !ok || hops != 0 || !bytes.Equal(v, []byte("good")) {
					t.Fatalf("node %d: fresh write not replicated (ok=%v hops=%d err=%v)", id, ok, hops, err)
				}
			}
		})
	}
}

// TestReplicatedWriteVisibleOnEveryCopy pins the write path's fan-out
// and the read path's replica preference: a write lands on exactly
// R+1 copies, and reads route to the cheapest live replica.
func TestReplicatedWriteVisibleOnEveryCopy(t *testing.T) {
	svc := New(Options{Nodes: 3, Replicas: 2})
	key := Key("c:replicated")
	l, err := svc.Acquire("m", svc.GroupOf(key))
	if err != nil {
		t.Fatal(err)
	}
	copies, err := svc.NodePut(ownersOf(svc, key)[0], svc.PlacementVersion(), l, key, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if copies != 3 {
		t.Fatalf("write landed on %d copies, want 3", copies)
	}

	// With replicas on every node, a cheaper node should serve reads.
	far := ownersOf(svc, key)[0]
	var near int
	for _, id := range ownersOf(svc, key) {
		if id != far {
			near = id
			break
		}
	}
	if err := svc.SetNodeDistance(near, 0.25); err != nil {
		t.Fatal(err)
	}
	before := svc.NodeStats()[near].Hits
	if _, ok := svc.Get(key); !ok {
		t.Fatal("replicated read missed")
	}
	if got := svc.NodeStats()[near].Hits; got != before+1 {
		t.Fatalf("cheapest replica (node %d) hits = %d, want %d", near, got, before+1)
	}
}

// TestMigrationFallthroughNoMissStorm pins the handoff guarantee: after
// AddNode flips ownership, lookups during the (not yet run) migration
// fall through to the old owner and stay hits — no miss storm — and
// the pull-copy plus MigrateAll converge the new copies, after which
// the old owner's stores are dropped.
func TestMigrationFallthroughNoMissStorm(t *testing.T) {
	svc := New(Options{Nodes: 1, Replicas: 0})
	keys := testKeys("mig", 64)
	vals := make(map[Key][]byte)
	for i, k := range keys {
		vals[k] = []byte(fmt.Sprintf("val-%d", i))
		svc.Seed(k, vals[k])
	}
	base := svc.Stats()

	svc.AddNode()
	for _, k := range keys {
		if _, ok := svc.Get(k); !ok {
			t.Fatalf("miss on %q during handoff — miss storm", k)
		}
	}
	st := svc.Stats()
	if st.Misses != base.Misses {
		t.Fatalf("handoff produced %d misses", st.Misses-base.Misses)
	}
	ms := svc.MigrationStats()
	if ms.FallthroughHits == 0 {
		t.Fatal("no lookup fell through — the new node served nothing it could not hold")
	}

	svc.MigrateAll()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	ms = svc.MigrationStats()
	if ms.MigratingShards != 0 || ms.PendingEntries != 0 {
		t.Fatalf("migration did not settle: %+v", ms)
	}
	if ms.ShardsMoved == 0 {
		t.Fatal("no shard recorded as moved")
	}
	// Old sole owner keeps only what it still owns; moved shards are gone.
	for _, ns := range svc.NodeStats() {
		if ns.ID == 0 && int64(ns.Shards) >= int64(svc.NumShards()) {
			t.Fatalf("node 0 still holds %d shards after settle", ns.Shards)
		}
	}
	for _, k := range keys {
		v, ok := svc.Get(k)
		if !ok || !bytes.Equal(v, vals[k]) {
			t.Fatalf("post-settle read of %q wrong (ok=%v)", k, ok)
		}
	}
}

// TestKillNodeKeepsReplicatedData pins failure recovery: with R=1,
// killing one node loses no cached data (a surviving copy serves every
// key), MigrateAll restores full replication on the survivors, and
// LostShards stays zero.
func TestKillNodeKeepsReplicatedData(t *testing.T) {
	svc := New(Options{Nodes: 3, Replicas: 1})
	keys := testKeys("kill", 96)
	for i, k := range keys {
		svc.Seed(k, []byte(fmt.Sprintf("v-%d", i)))
	}
	if err := svc.KillNode(1); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := svc.Get(k); !ok {
			t.Fatalf("key %q lost after single-node failure at R=1", k)
		}
	}
	svc.MigrateAll()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	info := svc.Placement()
	for sh, owners := range info.Owners {
		if len(owners) != 2 {
			t.Fatalf("shard %d: %d owners after re-replication, want 2", sh, len(owners))
		}
		if containsInt(owners, 1) {
			t.Fatalf("shard %d still placed on dead node 1", sh)
		}
	}
	if ms := svc.MigrationStats(); ms.LostShards != 0 {
		t.Fatalf("LostShards = %d, want 0", ms.LostShards)
	}

	// Error paths of the topology API.
	if err := svc.KillNode(1); err != ErrNodeDown {
		t.Fatalf("double kill: got %v, want ErrNodeDown", err)
	}
	if err := svc.KillNode(99); err != ErrUnknownNode {
		t.Fatalf("unknown node: got %v, want ErrUnknownNode", err)
	}
}

// TestDrainNodeHandsOffEverything pins the drain path: a drained node
// keeps serving until migration completes, then holds nothing; the
// last eligible node refuses to drain.
func TestDrainNodeHandsOffEverything(t *testing.T) {
	svc := New(Options{Nodes: 2, Replicas: 0})
	keys := testKeys("drain", 48)
	for _, k := range keys {
		svc.Seed(k, []byte("x"))
	}
	if err := svc.DrainNode(0); err != nil {
		t.Fatal(err)
	}
	// Mid-drain: everything still served (fallthrough to node 0).
	for _, k := range keys {
		if _, ok := svc.Get(k); !ok {
			t.Fatalf("key %q missed mid-drain", k)
		}
	}
	svc.MigrateAll()
	if ns := svc.NodeStats()[0]; ns.Shards != 0 || ns.Entries != 0 {
		t.Fatalf("drained node still holds %d shards / %d entries", ns.Shards, ns.Entries)
	}
	for _, k := range keys {
		if _, ok := svc.Get(k); !ok {
			t.Fatalf("key %q lost by drain", k)
		}
	}
	if err := svc.DrainNode(1); err != ErrLastNode {
		t.Fatalf("draining last eligible node: got %v, want ErrLastNode", err)
	}
}

// TestLeaseEpochSurvivesMigration pins the tentpole's lease guarantee:
// an epoch granted before a topology change keeps admitting writes
// after placement flips and data moves — leases are control-plane
// state, orthogonal to migration.
func TestLeaseEpochSurvivesMigration(t *testing.T) {
	svc := New(Options{Nodes: 2, Replicas: 1})
	key := Key("c:lease-survives")
	l, err := svc.Acquire("m", svc.GroupOf(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Put(l, key, []byte("before")); err != nil {
		t.Fatal(err)
	}
	svc.AddNode()
	svc.AddNode()
	svc.MigrateAll()
	if err := svc.KillNode(0); err != nil {
		t.Fatal(err)
	}
	svc.MigrateAll()
	if err := svc.Put(l, key, []byte("after")); err != nil {
		t.Fatalf("pre-migration epoch rejected after topology churn: %v", err)
	}
	if v, ok := svc.Get(key); !ok || !bytes.Equal(v, []byte("after")) {
		t.Fatalf("post-churn write not visible (ok=%v)", ok)
	}
}

// TestNodeAddressedCallsRejectStaleVersion pins the ErrMoved contract
// of the node-addressed data plane.
func TestNodeAddressedCallsRejectStaleVersion(t *testing.T) {
	svc := New(Options{Nodes: 2, Replicas: 0})
	key := Key("c:moved")
	l, err := svc.Acquire("m", svc.GroupOf(key))
	if err != nil {
		t.Fatal(err)
	}
	stale := svc.PlacementVersion()
	svc.AddNode() // bumps the version
	if _, _, _, err := svc.NodeGet(0, stale, key); err != ErrMoved {
		t.Fatalf("NodeGet with stale version: got %v, want ErrMoved", err)
	}
	if _, err := svc.NodePut(0, stale, l, key, []byte("v")); err != ErrMoved {
		t.Fatalf("NodePut with stale version: got %v, want ErrMoved", err)
	}
	// A dead target is also a routing error, not a data error.
	svc.MigrateAll()
	if err := svc.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := svc.NodeGet(0, svc.PlacementVersion(), key); err != ErrMoved {
		t.Fatalf("NodeGet at dead node: got %v, want ErrMoved", err)
	}
}

// TestStatsPerNodeSplit pins the satellite fix: hit/miss counters are
// attributable per node and Stats()/HitRatio() stay exact at the
// aggregate.
func TestStatsPerNodeSplit(t *testing.T) {
	svc := New(Options{Nodes: 3, Replicas: 0})
	keys := testKeys("split", 60)
	for _, k := range keys {
		svc.Seed(k, []byte("y"))
	}
	for _, k := range keys {
		svc.Get(k)                   // hit
		svc.Get(k + Key("-missing")) // miss
	}
	st := svc.Stats()
	if st.Hits != 60 || st.Misses != 60 {
		t.Fatalf("aggregate hits/misses = %d/%d, want 60/60", st.Hits, st.Misses)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
	var hits, misses int64
	nodesServing := 0
	for _, ns := range svc.NodeStats() {
		hits += ns.Hits
		misses += ns.Misses
		if ns.Hits > 0 {
			nodesServing++
		}
	}
	if hits != st.Hits || misses != st.Misses {
		t.Fatalf("per-node sum %d/%d != aggregate %d/%d", hits, misses, st.Hits, st.Misses)
	}
	if nodesServing < 2 {
		t.Fatalf("only %d node(s) served hits — placement did not spread the keys", nodesServing)
	}
}
