package memfs

import (
	"cntr/internal/blobstore"
	"encoding/binary"
	"sort"

	"cntr/internal/vfs"
)

// Create implements vfs.FS: atomic create-and-open of a regular file.
func (fs *FS) Create(op *vfs.Op, parent vfs.Ino, name string, mode vfs.Mode, flags vfs.OpenFlags) (vfs.Attr, vfs.Handle, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	attr, err := fs.insertChild(c, parent, name, func(dir *inode) (*inode, error) {
		return fs.newInode(c, dir, vfs.TypeRegular, mode, 0), nil
	})
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	h := fs.openLocked(attr.Ino, flags, false)
	return attr, h, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(op *vfs.Op, ino vfs.Ino, flags vfs.OpenFlags) (vfs.Handle, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(ino)
	if err != nil {
		return 0, err
	}
	switch n.attr.Type {
	case vfs.TypeDirectory:
		if flags.Writable() {
			return 0, vfs.EISDIR
		}
	case vfs.TypeSymlink:
		return 0, vfs.ELOOP
	}
	if flags.Readable() && !c.MayRead(&n.attr) {
		return 0, vfs.EACCES
	}
	if flags.Writable() && !c.MayWrite(&n.attr) {
		return 0, vfs.EACCES
	}
	if flags&vfs.OTrunc != 0 && flags.Writable() && n.attr.Type == vfs.TypeRegular {
		if err := fs.truncate(n, 0); err != nil {
			return 0, err
		}
		now := fs.now()
		n.attr.Mtime, n.attr.Ctime = now, now
	}
	if n.attr.Type == vfs.TypeFIFO {
		// Count the pipe's open ends so reads see EOF once the last
		// writer closes and writes fail with EPIPE once readers are gone.
		// A nonblocking write-only open with no reader fails with ENXIO;
		// a *blocking* single-direction open parks until the peer end is
		// held, per fifo(7) — outside the filesystem lock, so a FIFO open
		// waiting for its peer cannot wedge the whole filesystem
		// (Read does the same for parked FIFO reads).
		p := n.pipeBuf()
		readable, writable := flags.Readable(), flags.Writable()
		fs.mu.Unlock()
		err := p.open(op, readable, writable, flags&vfs.ONonblock != 0)
		fs.mu.Lock()
		if err != nil {
			return 0, err
		}
		if _, gerr := fs.get(ino); gerr != nil {
			// The FIFO was unlinked and reaped while we parked; the end we
			// registered must not linger.
			p.release(readable, writable)
			return 0, gerr
		}
	}
	return fs.openLocked(ino, flags, false), nil
}

func (fs *FS) openLocked(ino vfs.Ino, flags vfs.OpenFlags, dir bool) vfs.Handle {
	h := fs.nextH
	fs.nextH++
	fs.handles[h] = &openFile{ino: ino, flags: flags, dir: dir}
	fs.inodes[ino].openCount++
	return h
}

func (fs *FS) handle(h vfs.Handle) (*openFile, *inode, error) {
	of, ok := fs.handles[h]
	if !ok {
		return nil, nil, vfs.EBADF
	}
	n, err := fs.get(of.ino)
	if err != nil {
		return nil, nil, err
	}
	return of, n, nil
}

// Read implements vfs.FS. Reads from a FIFO block until data arrives and
// unwind with EINTR when the operation is interrupted (the memfs-level
// half of FUSE_INTERRUPT support).
func (fs *FS) Read(op *vfs.Op, h vfs.Handle, off int64, dest []byte) (int, error) {
	if err := op.Err(); err != nil {
		return 0, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, n, err := fs.handle(h)
	if err != nil {
		return 0, err
	}
	if of.dir || n.attr.Type == vfs.TypeDirectory {
		return 0, vfs.EISDIR
	}
	if !of.flags.Readable() {
		return 0, vfs.EBADF
	}
	if n.attr.Type == vfs.TypeFIFO {
		p := n.pipeBuf()
		nonblock := of.flags&vfs.ONonblock != 0
		// Block outside the filesystem lock: a stuck FIFO reader must not
		// wedge the whole filesystem.
		fs.mu.Unlock()
		nr, rerr := p.read(op, dest, nonblock)
		fs.mu.Lock()
		return nr, rerr
	}
	if off < 0 {
		return 0, vfs.EINVAL
	}
	if off >= n.attr.Size {
		return 0, nil
	}
	want := int64(len(dest))
	if off+want > n.attr.Size {
		want = n.attr.Size - off
	}
	read := int64(0)
	for read < want {
		idx := (off + read) / blockSize
		bo := (off + read) % blockSize
		chunk := blockSize - bo
		if chunk > want-read {
			chunk = want - read
		}
		b, err := fs.readBlock(n, idx)
		if err != nil {
			// A lost or corrupted backend chunk: report what was read,
			// or the error if nothing was.
			if read > 0 {
				break
			}
			return 0, err
		}
		// The blob holds the block's written extent; holes and bytes
		// past the extent read as zeros.
		var copied int64
		if bo < int64(len(b)) {
			avail := int64(len(b)) - bo
			if avail > chunk {
				avail = chunk
			}
			copied = int64(copy(dest[read:read+avail], b[bo:bo+avail]))
		}
		for i := read + copied; i < read+chunk; i++ {
			dest[i] = 0
		}
		read += chunk
	}
	n.attr.Atime = fs.now()
	return int(read), nil
}

// Write implements vfs.FS, honouring O_APPEND, RLIMIT_FSIZE, capacity
// limits, and clearing setuid/setgid bits on writes by unprivileged
// callers.
func (fs *FS) Write(op *vfs.Op, h vfs.Handle, off int64, data []byte) (int, error) {
	c := op.Cred
	if err := op.Err(); err != nil {
		return 0, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, n, err := fs.handle(h)
	if err != nil {
		return 0, err
	}
	if of.dir || n.attr.Type == vfs.TypeDirectory {
		return 0, vfs.EISDIR
	}
	if !of.flags.Writable() {
		return 0, vfs.EBADF
	}
	if n.attr.Type == vfs.TypeFIFO {
		return n.pipeBuf().write(data)
	}
	if off < 0 {
		return 0, vfs.EINVAL
	}
	if of.flags&vfs.OAppend != 0 {
		off = n.attr.Size
	}
	if c.FSizeLimit > 0 {
		if off >= c.FSizeLimit {
			return 0, vfs.EFBIG
		}
		if off+int64(len(data)) > c.FSizeLimit {
			data = data[:c.FSizeLimit-off]
		}
	}
	written := int64(0)
	for written < int64(len(data)) {
		idx := (off + written) / blockSize
		bo := (off + written) % blockSize
		chunk := int64(blockSize) - bo
		if chunk > int64(len(data))-written {
			chunk = int64(len(data)) - written
		}
		if err := fs.writeBlock(n, idx, bo, data[written:written+chunk]); err != nil {
			if written > 0 {
				break
			}
			return 0, err
		}
		written += chunk
	}
	if off+written > n.attr.Size {
		n.attr.Size = off + written
	}
	now := fs.now()
	n.attr.Mtime, n.attr.Ctime = now, now
	if !c.Caps.Has(vfs.CapFsetid) {
		n.attr.Mode &^= vfs.ModeSetUID
		if n.attr.Mode&0o010 != 0 {
			n.attr.Mode &^= vfs.ModeSetGID
		}
	}
	return int(written), nil
}

// Flush implements vfs.FS. memfs has no dirty state to write out.
func (fs *FS) Flush(op *vfs.Op, h vfs.Handle) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, _, err := fs.handle(h)
	return err
}

// Fsync implements vfs.FS.
func (fs *FS) Fsync(op *vfs.Op, h vfs.Handle, datasync bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, err := fs.handle(h)
	return err
}

// Release implements vfs.FS.
func (fs *FS) Release(op *vfs.Op, h vfs.Handle) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.handles[h]
	if !ok {
		return vfs.EBADF
	}
	delete(fs.handles, h)
	if n, ok := fs.inodes[of.ino]; ok {
		if n.attr.Type == vfs.TypeFIFO && !of.dir {
			n.pipeBuf().release(of.flags.Readable(), of.flags.Writable())
		}
		n.openCount--
		fs.maybeReap(of.ino, n)
	}
	return nil
}

// Opendir implements vfs.FS.
func (fs *FS) Opendir(op *vfs.Op, ino vfs.Ino) (vfs.Handle, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.getDir(c, ino)
	if err != nil {
		return 0, err
	}
	if !c.MayRead(&n.attr) {
		return 0, vfs.EACCES
	}
	return fs.openLocked(ino, vfs.ORdonly, true), nil
}

// Readdir implements vfs.FS. Entries are returned in a stable sorted
// order; offsets are 1-based positions in that order with "." and ".."
// first, matching what getdents callers expect.
func (fs *FS) Readdir(op *vfs.Op, h vfs.Handle, off int64) ([]vfs.Dirent, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	of, n, err := fs.handle(h)
	if err != nil {
		return nil, err
	}
	if !of.dir {
		return nil, vfs.ENOTDIR
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	all := make([]vfs.Dirent, 0, len(names)+2)
	all = append(all,
		vfs.Dirent{Name: ".", Ino: of.ino, Type: vfs.TypeDirectory},
		vfs.Dirent{Name: "..", Ino: n.parent, Type: vfs.TypeDirectory},
	)
	for _, name := range names {
		ci := n.children[name]
		child, ok := fs.inodes[ci]
		if !ok {
			continue
		}
		all = append(all, vfs.Dirent{Name: name, Ino: ci, Type: child.attr.Type})
	}
	for i := range all {
		all[i].Off = int64(i + 1)
	}
	if off < 0 || off >= int64(len(all)) {
		return nil, nil
	}
	return all[off:], nil
}

// Releasedir implements vfs.FS.
func (fs *FS) Releasedir(op *vfs.Op, h vfs.Handle) error { return fs.Release(op, h) }

// Statfs implements vfs.FS.
func (fs *FS) Statfs(op *vfs.Op, ino vfs.Ino) (vfs.StatfsOut, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total := uint64(fs.cap / blockSize)
	used := uint64(fs.used / blockSize)
	return vfs.StatfsOut{
		BlockSize:  blockSize,
		Blocks:     total,
		BlocksFree: total - used,
		Files:      uint64(len(fs.inodes)),
		FilesFree:  1 << 20,
		NameMax:    vfs.MaxNameLen,
	}, nil
}

// Setxattr implements vfs.FS. Setting a POSIX access ACL re-derives the
// group permission bits from the ACL mask entry, as Linux does.
func (fs *FS) Setxattr(op *vfs.Op, ino vfs.Ino, name string, value []byte, flags vfs.XattrFlags) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(ino)
	if err != nil {
		return err
	}
	if name == "" {
		return vfs.EINVAL
	}
	if !c.IsOwner(&n.attr) && !c.Caps.Has(vfs.CapFowner) {
		return vfs.EPERM
	}
	_, exists := n.xattrs[name]
	if flags&vfs.XattrCreate != 0 && exists {
		return vfs.EEXIST
	}
	if flags&vfs.XattrReplace != 0 && !exists {
		return vfs.ENODATA
	}
	if name == vfs.XattrPosixACLAccess {
		acl, err := vfs.DecodeACL(value)
		if err != nil {
			return err
		}
		if mask := acl.Find(vfs.ACLMask); mask != nil {
			n.attr.Mode = n.attr.Mode&^0o070 | vfs.Mode(mask.Perm&7)<<3
		}
	}
	n.xattrs[name] = append([]byte(nil), value...)
	n.attr.Ctime = fs.now()
	return nil
}

// Getxattr implements vfs.FS.
func (fs *FS) Getxattr(op *vfs.Op, ino vfs.Ino, name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(ino)
	if err != nil {
		return nil, err
	}
	v, ok := n.xattrs[name]
	if !ok {
		return nil, vfs.ENODATA
	}
	return append([]byte(nil), v...), nil
}

// Listxattr implements vfs.FS.
func (fs *FS) Listxattr(op *vfs.Op, ino vfs.Ino) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(ino)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Removexattr implements vfs.FS.
func (fs *FS) Removexattr(op *vfs.Op, ino vfs.Ino, name string) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(ino)
	if err != nil {
		return err
	}
	if !c.IsOwner(&n.attr) && !c.Caps.Has(vfs.CapFowner) {
		return vfs.EPERM
	}
	if _, ok := n.xattrs[name]; !ok {
		return vfs.ENODATA
	}
	delete(n.xattrs, name)
	n.attr.Ctime = fs.now()
	return nil
}

// Access implements vfs.FS.
func (fs *FS) Access(op *vfs.Op, ino vfs.Ino, mask uint32) error {
	c := op.Cred
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(ino)
	if err != nil {
		return err
	}
	if mask&vfs.AccessRead != 0 && !c.MayRead(&n.attr) {
		return vfs.EACCES
	}
	if mask&vfs.AccessWrite != 0 && !c.MayWrite(&n.attr) {
		return vfs.EACCES
	}
	if mask&vfs.AccessExec != 0 && !c.MayExec(&n.attr) {
		return vfs.EACCES
	}
	return nil
}

// Fallocate implements vfs.FS with default (extend), FALLOC_FL_KEEP_SIZE
// and FALLOC_FL_PUNCH_HOLE behaviours.
func (fs *FS) Fallocate(op *vfs.Op, h vfs.Handle, mode uint32, off, length int64) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, n, err := fs.handle(h)
	if err != nil {
		return err
	}
	if !of.flags.Writable() {
		return vfs.EBADF
	}
	if off < 0 || length <= 0 {
		return vfs.EINVAL
	}
	if mode&vfs.FallocPunchHole != 0 {
		if mode&vfs.FallocKeepSize == 0 {
			return vfs.EINVAL // PUNCH_HOLE requires KEEP_SIZE
		}
		first := off / blockSize
		last := (off + length) / blockSize
		for idx := first; idx <= last; idx++ {
			blockStart := idx * blockSize
			blockEnd := blockStart + blockSize
			if blockStart >= off && blockEnd <= off+length {
				fs.freeBlock(n, idx)
			} else if ref, ok := n.blocks[idx]; ok {
				b, gerr := fs.getBlob(ref)
				if gerr != nil {
					return gerr
				}
				s := max64(off, blockStart) - blockStart
				e := min64(off+length, blockEnd) - blockStart
				if s >= int64(len(b)) {
					continue // the punched range is past the written extent
				}
				if e > int64(len(b)) {
					e = int64(len(b))
				}
				buf := append([]byte(nil), b...)
				for i := s; i < e; i++ {
					buf[i] = 0
				}
				if rerr := fs.replaceBlock(n, idx, ref, buf); rerr != nil {
					return rerr
				}
			}
		}
		return nil
	}
	// Preallocation: materialize zero blocks in the range (in a
	// content-addressed store they all share the one zero chunk).
	end := off + length
	if c.FSizeLimit > 0 && mode&vfs.FallocKeepSize == 0 && end > c.FSizeLimit {
		return vfs.EFBIG
	}
	var zero [blockSize]byte
	for idx := off / blockSize; idx*blockSize < end; idx++ {
		if _, ok := n.blocks[idx]; ok {
			continue
		}
		if fs.used+blockSize > fs.cap {
			return vfs.ENOSPC
		}
		ref, perr := fs.store.Put(zero[:])
		if perr != nil {
			return vfs.EIO
		}
		fs.materializeBlock(n, idx, ref)
	}
	if mode&vfs.FallocKeepSize == 0 && end > n.attr.Size {
		n.attr.Size = end
	}
	return nil
}

// UsedBytes reports the materialized data bytes — the logical view
// (blockSize per block), independent of backend deduplication.
func (fs *FS) UsedBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.used
}

// Store returns the backend blob store file content lives in.
func (fs *FS) Store() blobstore.Store { return fs.store }

// BlockRefs returns every live block reference held by the
// filesystem's inodes. Image tooling uses it for physical (deduped)
// size accounting: unique refs across a set of filesystems sharing one
// store are the bytes actually occupied.
func (fs *FS) BlockRefs() []blobstore.Ref {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []blobstore.Ref
	for _, n := range fs.inodes {
		for _, ref := range n.blocks {
			out = append(out, ref)
		}
	}
	return out
}

// NameToHandle implements vfs.HandleExporter: memfs inodes are
// persistent, so the inode number itself is a durable handle.
func (fs *FS) NameToHandle(ino vfs.Ino) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, err := fs.get(ino); err != nil {
		return nil, err
	}
	h := make([]byte, 8)
	binary.LittleEndian.PutUint64(h, uint64(ino))
	return h, nil
}

// OpenByHandle implements vfs.HandleExporter.
func (fs *FS) OpenByHandle(handle []byte) (vfs.Ino, error) {
	if len(handle) != 8 {
		return 0, vfs.EINVAL
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ino := vfs.Ino(binary.LittleEndian.Uint64(handle))
	if _, err := fs.get(ino); err != nil {
		return 0, vfs.ESTALE
	}
	return ino, nil
}

// SyncFS implements vfs.SyncerFS; memfs is always consistent.
func (fs *FS) SyncFS() error { return nil }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
