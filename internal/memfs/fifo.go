package memfs

import (
	"sync"

	"cntr/internal/vfs"
)

// pipeBuf is the byte stream behind a FIFO inode. Readers block until
// data is available; an interrupted operation (canceled Op context)
// unwinds with EINTR, which is what FUSE_INTERRUPT delivers to a process
// stuck in read(2) on a pipe.
type pipeBuf struct {
	mu   sync.Mutex
	data []byte
	// wake is closed (and replaced) whenever data arrives.
	wake chan struct{}
}

func newPipeBuf() *pipeBuf { return &pipeBuf{wake: make(chan struct{})} }

// pipeBuf returns the inode's pipe, creating it on first use. Caller
// holds fs.mu.
func (n *inode) pipeBuf() *pipeBuf {
	if n.pipe == nil {
		n.pipe = newPipeBuf()
	}
	return n.pipe
}

// read blocks until the FIFO has data or op is interrupted.
func (p *pipeBuf) read(op *vfs.Op, dest []byte) (int, error) {
	if len(dest) == 0 {
		return 0, nil
	}
	for {
		if err := op.Err(); err != nil {
			return 0, err
		}
		p.mu.Lock()
		if len(p.data) > 0 {
			n := copy(dest, p.data)
			p.data = append(p.data[:0], p.data[n:]...)
			p.mu.Unlock()
			return n, nil
		}
		wake := p.wake
		p.mu.Unlock()
		select {
		case <-op.Context().Done():
			return 0, vfs.EINTR
		case <-wake:
		}
	}
}

// write appends data and wakes blocked readers.
func (p *pipeBuf) write(data []byte) int {
	p.mu.Lock()
	p.data = append(p.data, data...)
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
	return len(data)
}
