package memfs

import (
	"sync"

	"cntr/internal/vfs"
)

// pipeBuf is the byte stream behind a FIFO inode, with pipe(7)'s
// end-of-stream semantics. Readers block until data is available; an
// interrupted operation (canceled Op context) unwinds with EINTR, which
// is what FUSE_INTERRUPT delivers to a process stuck in read(2) on a
// pipe. Open ends are counted: once a writer has existed, the last
// writer's close delivers EOF to readers; once a reader has existed, a
// write after the last reader's close fails with EPIPE (the errno behind
// SIGPIPE).
//
// open(2) blocks until a peer arrives, per fifo(7): a blocking read-only
// open parks until a writer holds the other end, a blocking write-only
// open parks until a reader does, and O_RDWR opens both ends at once so
// it never blocks. A parked open is interruptible through the Op
// context, unwinding with EINTR and leaving no trace of the aborted end.
//
// O_NONBLOCK follows pipe(7)/fifo(7): a nonblocking read-only open
// succeeds immediately; a nonblocking write-only open with no reader
// present fails with ENXIO; a nonblocking read on an empty pipe returns
// EAGAIN while a writer holds the other end and 0 (EOF) when no writer
// does; a write after the last reader's close fails with EPIPE without
// blocking (writes never block in this model — the buffer is unbounded).
type pipeBuf struct {
	mu   sync.Mutex
	data []byte
	// wake is closed (and replaced) whenever data arrives or an end of
	// the pipe is opened or closed, so parked opens and blocked readers
	// re-evaluate their condition.
	wake chan struct{}

	readers, writers     int
	hadReader, hadWriter bool
}

func newPipeBuf() *pipeBuf { return &pipeBuf{wake: make(chan struct{})} }

// pipeBuf returns the inode's pipe, creating it on first use. Caller
// holds fs.mu.
func (n *inode) pipeBuf() *pipeBuf {
	if n.pipe == nil {
		n.pipe = newPipeBuf()
	}
	return n.pipe
}

// open registers one open of the FIFO for the given directions and, for
// blocking single-direction opens, parks until the other end is held —
// fifo(7)'s open-until-peer contract. The end being opened is counted
// *before* parking, so two blocking openers of opposite directions
// always see each other and both proceed. A nonblocking write-only open
// with no reader fails with ENXIO; an interrupted park unwinds with
// EINTR after un-registering the end.
func (p *pipeBuf) open(op *vfs.Op, readable, writable, nonblock bool) error {
	p.mu.Lock()
	if nonblock && writable && !readable && p.readers == 0 {
		p.mu.Unlock()
		return vfs.ENXIO
	}
	if readable {
		p.readers++
	}
	if writable {
		p.writers++
	}
	p.wakeAllLocked()
	if nonblock || (readable && writable) {
		// O_NONBLOCK never parks; O_RDWR holds both ends itself.
		p.recordEndsLocked(readable, writable)
		p.mu.Unlock()
		return nil
	}
	for {
		if readable && p.writers > 0 {
			break
		}
		if writable && p.readers > 0 {
			break
		}
		wake := p.wake
		p.mu.Unlock()
		select {
		case <-op.Context().Done():
			// Undo the registration: the aborted open never produced a
			// handle, so it must not count as a live (or historical) end.
			p.mu.Lock()
			if readable {
				p.readers--
			}
			if writable {
				p.writers--
			}
			p.wakeAllLocked()
			p.mu.Unlock()
			return vfs.EINTR
		case <-wake:
		}
		p.mu.Lock()
	}
	p.recordEndsLocked(readable, writable)
	p.mu.Unlock()
	return nil
}

// recordEndsLocked marks which ends have ever been held by a completed
// open — the history behind EOF (hadWriter) and EPIPE (hadReader).
// Deferred to open completion so an interrupted park leaves no history.
// Caller holds p.mu.
func (p *pipeBuf) recordEndsLocked(readable, writable bool) {
	if readable {
		p.hadReader = true
	}
	if writable {
		p.hadWriter = true
	}
}

// release undoes one open. The last writer's close wakes blocked readers
// so they observe EOF; the last reader's close is observed by the next
// write, which fails with EPIPE.
func (p *pipeBuf) release(readable, writable bool) {
	p.mu.Lock()
	if readable && p.readers > 0 {
		p.readers--
	}
	if writable && p.writers > 0 {
		p.writers--
	}
	p.wakeAllLocked()
	p.mu.Unlock()
}

// wakeAllLocked wakes every parked open and blocked reader. Caller
// holds p.mu.
func (p *pipeBuf) wakeAllLocked() {
	close(p.wake)
	p.wake = make(chan struct{})
}

// read blocks until the FIFO has data, every writer is gone (EOF), or op
// is interrupted. With nonblock set it never blocks: an empty pipe
// returns EAGAIN while a writer holds the other end and 0 (EOF) when no
// writer does, per pipe(7).
func (p *pipeBuf) read(op *vfs.Op, dest []byte, nonblock bool) (int, error) {
	if len(dest) == 0 {
		return 0, nil
	}
	for {
		if err := op.Err(); err != nil {
			return 0, err
		}
		p.mu.Lock()
		if len(p.data) > 0 {
			n := copy(dest, p.data)
			p.data = append(p.data[:0], p.data[n:]...)
			p.mu.Unlock()
			return n, nil
		}
		if nonblock {
			writers := p.writers
			p.mu.Unlock()
			if writers > 0 {
				return 0, vfs.EAGAIN
			}
			return 0, nil
		}
		if p.hadWriter && p.writers == 0 {
			// The write side existed and is fully closed: end of stream.
			p.mu.Unlock()
			return 0, nil
		}
		wake := p.wake
		p.mu.Unlock()
		select {
		case <-op.Context().Done():
			return 0, vfs.EINTR
		case <-wake:
		}
	}
}

// write appends data and wakes blocked readers. Writing after the read
// side has come and gone fails with EPIPE, as a broken pipe does.
func (p *pipeBuf) write(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hadReader && p.readers == 0 {
		return 0, vfs.EPIPE
	}
	p.data = append(p.data, data...)
	p.wakeAllLocked()
	return len(data), nil
}
