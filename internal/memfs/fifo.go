package memfs

import (
	"sync"

	"cntr/internal/vfs"
)

// pipeBuf is the byte stream behind a FIFO inode, with pipe(7)'s
// end-of-stream semantics. Readers block until data is available; an
// interrupted operation (canceled Op context) unwinds with EINTR, which
// is what FUSE_INTERRUPT delivers to a process stuck in read(2) on a
// pipe. Open ends are counted: once a writer has existed, the last
// writer's close delivers EOF to readers; once a reader has existed, a
// write after the last reader's close fails with EPIPE (the errno behind
// SIGPIPE).
//
// O_NONBLOCK follows pipe(7)/fifo(7): a nonblocking read on an empty
// pipe returns EAGAIN while a writer holds the other end and 0 (EOF)
// when no writer does; a nonblocking write-only open with no reader
// present fails with ENXIO; a write after the last reader's close fails
// with EPIPE without blocking (writes never block in this model — the
// buffer is unbounded). Blocking open(2)-until-peer is still not
// modelled: a blocking reader that arrives before any writer blocks in
// read rather than in open.
type pipeBuf struct {
	mu   sync.Mutex
	data []byte
	// wake is closed (and replaced) whenever data arrives or an end of
	// the pipe is closed, so blocked readers re-evaluate EOF.
	wake chan struct{}

	readers, writers     int
	hadReader, hadWriter bool
}

func newPipeBuf() *pipeBuf { return &pipeBuf{wake: make(chan struct{})} }

// pipeBuf returns the inode's pipe, creating it on first use. Caller
// holds fs.mu.
func (n *inode) pipeBuf() *pipeBuf {
	if n.pipe == nil {
		n.pipe = newPipeBuf()
	}
	return n.pipe
}

// open registers one open of the FIFO for the given directions. A
// nonblocking write-only open with no reader on the other end fails
// with ENXIO, per fifo(7).
func (p *pipeBuf) open(readable, writable, nonblock bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if nonblock && writable && !readable && p.readers == 0 {
		return vfs.ENXIO
	}
	if readable {
		p.readers++
		p.hadReader = true
	}
	if writable {
		p.writers++
		p.hadWriter = true
	}
	p.wakeAllLocked()
	return nil
}

// release undoes one open. The last writer's close wakes blocked readers
// so they observe EOF; the last reader's close is observed by the next
// write, which fails with EPIPE.
func (p *pipeBuf) release(readable, writable bool) {
	p.mu.Lock()
	if readable && p.readers > 0 {
		p.readers--
	}
	if writable && p.writers > 0 {
		p.writers--
	}
	p.wakeAllLocked()
	p.mu.Unlock()
}

// wakeAllLocked wakes every blocked reader. Caller holds p.mu.
func (p *pipeBuf) wakeAllLocked() {
	close(p.wake)
	p.wake = make(chan struct{})
}

// read blocks until the FIFO has data, every writer is gone (EOF), or op
// is interrupted. With nonblock set it never blocks: an empty pipe
// returns EAGAIN while a writer holds the other end and 0 (EOF) when no
// writer does, per pipe(7).
func (p *pipeBuf) read(op *vfs.Op, dest []byte, nonblock bool) (int, error) {
	if len(dest) == 0 {
		return 0, nil
	}
	for {
		if err := op.Err(); err != nil {
			return 0, err
		}
		p.mu.Lock()
		if len(p.data) > 0 {
			n := copy(dest, p.data)
			p.data = append(p.data[:0], p.data[n:]...)
			p.mu.Unlock()
			return n, nil
		}
		if nonblock {
			writers := p.writers
			p.mu.Unlock()
			if writers > 0 {
				return 0, vfs.EAGAIN
			}
			return 0, nil
		}
		if p.hadWriter && p.writers == 0 {
			// The write side existed and is fully closed: end of stream.
			// (A reader that opened before any writer blocks instead —
			// this stands in for open(2) blocking until a peer arrives.)
			p.mu.Unlock()
			return 0, nil
		}
		wake := p.wake
		p.mu.Unlock()
		select {
		case <-op.Context().Done():
			return 0, vfs.EINTR
		case <-wake:
		}
	}
}

// write appends data and wakes blocked readers. Writing after the read
// side has come and gone fails with EPIPE, as a broken pipe does.
func (p *pipeBuf) write(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hadReader && p.readers == 0 {
		return 0, vfs.EPIPE
	}
	p.data = append(p.data, data...)
	p.wakeAllLocked()
	return len(data), nil
}
