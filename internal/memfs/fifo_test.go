package memfs

import (
	"testing"
	"time"

	"cntr/internal/vfs"
)

func mkfifo(t *testing.T, fs *FS, name string) vfs.Ino {
	t.Helper()
	attr, err := fs.Mknod(vfs.RootOp(), vfs.RootIno, name, vfs.TypeFIFO, 0o644, 0)
	if err != nil {
		t.Fatal(err)
	}
	return attr.Ino
}

// TestFIFOWriterCloseDeliversEOF: a blocked reader wakes with EOF when
// the last writer closes, and subsequent reads see EOF immediately.
func TestFIFOWriterCloseDeliversEOF(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("tail")); err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		buf := make([]byte, 16)
		n, rerr := fs.Read(root, rh, 0, buf)
		if rerr == nil && string(buf[:n]) != "tail" {
			rerr = vfs.EIO
		}
		if rerr == nil {
			// Drain: the next read must block until the writer closes,
			// then deliver EOF.
			n, rerr = fs.Read(root, rh, 0, buf)
		}
		done <- result{n, rerr}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("read finished before writer close: %+v", r)
	default:
	}
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || r.n != 0 {
			t.Fatalf("EOF read: n=%d err=%v, want 0,nil", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("last-writer close did not wake the reader")
	}
	// EOF is sticky while no writer exists.
	if n, err := fs.Read(root, rh, 0, make([]byte, 4)); n != 0 || err != nil {
		t.Fatalf("post-EOF read: n=%d err=%v", n, err)
	}
	// A new writer revives the stream.
	wh2, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh2, 0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("revived pipe read: %q %v", buf[:n], err)
	}
	fs.Release(root, wh2)
	fs.Release(root, rh)
}

// TestFIFOReaderCloseBreaksPipe: once the read side has come and gone,
// writes fail with EPIPE.
func TestFIFOReaderCloseBreaksPipe(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Release(root, rh); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("x")); vfs.ToErrno(err) != vfs.EPIPE {
		t.Fatalf("write after reader close: %v, want EPIPE", err)
	}
	fs.Release(root, wh)
}

// TestFIFOReadBlocksBeforeFirstWriter: a reader that arrives before any
// writer must block (the stand-in for open(2) blocking), not see EOF.
func TestFIFOReadBlocksBeforeFirstWriter(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")
	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		n, rerr := fs.Read(root, rh, 0, buf)
		if rerr == nil && string(buf[:n]) != "ping" {
			rerr = vfs.EIO
		}
		done <- rerr
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("read returned with no writer ever: %v", err)
	default:
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write did not wake the early reader")
	}
	fs.Release(root, wh)
	fs.Release(root, rh)
}

// TestFIFOReadWriteEnd: an O_RDWR open holds both ends, so it neither
// breaks the pipe for itself nor sees EOF while it stays open.
func TestFIFOReadWriteEnd(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")
	h, err := fs.Open(root, ino, vfs.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, h, 0, []byte("self")); err != nil {
		t.Fatalf("rdwr write: %v", err)
	}
	buf := make([]byte, 8)
	if n, err := fs.Read(root, h, 0, buf); err != nil || string(buf[:n]) != "self" {
		t.Fatalf("rdwr read: %q %v", buf[:n], err)
	}
	fs.Release(root, h)
}
