package memfs

import (
	"testing"
	"time"

	"cntr/internal/vfs"
)

func mkfifo(t *testing.T, fs *FS, name string) vfs.Ino {
	t.Helper()
	attr, err := fs.Mknod(vfs.RootOp(), vfs.RootIno, name, vfs.TypeFIFO, 0o644, 0)
	if err != nil {
		t.Fatal(err)
	}
	return attr.Ino
}

// TestFIFOWriterCloseDeliversEOF: a blocked reader wakes with EOF when
// the last writer closes, and subsequent reads see EOF immediately.
func TestFIFOWriterCloseDeliversEOF(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("tail")); err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		buf := make([]byte, 16)
		n, rerr := fs.Read(root, rh, 0, buf)
		if rerr == nil && string(buf[:n]) != "tail" {
			rerr = vfs.EIO
		}
		if rerr == nil {
			// Drain: the next read must block until the writer closes,
			// then deliver EOF.
			n, rerr = fs.Read(root, rh, 0, buf)
		}
		done <- result{n, rerr}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("read finished before writer close: %+v", r)
	default:
	}
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || r.n != 0 {
			t.Fatalf("EOF read: n=%d err=%v, want 0,nil", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("last-writer close did not wake the reader")
	}
	// EOF is sticky while no writer exists.
	if n, err := fs.Read(root, rh, 0, make([]byte, 4)); n != 0 || err != nil {
		t.Fatalf("post-EOF read: n=%d err=%v", n, err)
	}
	// A new writer revives the stream.
	wh2, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh2, 0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("revived pipe read: %q %v", buf[:n], err)
	}
	fs.Release(root, wh2)
	fs.Release(root, rh)
}

// TestFIFOReaderCloseBreaksPipe: once the read side has come and gone,
// writes fail with EPIPE.
func TestFIFOReaderCloseBreaksPipe(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Release(root, rh); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("x")); vfs.ToErrno(err) != vfs.EPIPE {
		t.Fatalf("write after reader close: %v, want EPIPE", err)
	}
	fs.Release(root, wh)
}

// TestFIFOReadBlocksBeforeFirstWriter: a reader that arrives before any
// writer must block (the stand-in for open(2) blocking), not see EOF.
func TestFIFOReadBlocksBeforeFirstWriter(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")
	rh, err := fs.Open(root, ino, vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		n, rerr := fs.Read(root, rh, 0, buf)
		if rerr == nil && string(buf[:n]) != "ping" {
			rerr = vfs.EIO
		}
		done <- rerr
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("read returned with no writer ever: %v", err)
	default:
	}
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write did not wake the early reader")
	}
	fs.Release(root, wh)
	fs.Release(root, rh)
}

// TestFIFOReadWriteEnd: an O_RDWR open holds both ends, so it neither
// breaks the pipe for itself nor sees EOF while it stays open.
func TestFIFOReadWriteEnd(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")
	h, err := fs.Open(root, ino, vfs.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, h, 0, []byte("self")); err != nil {
		t.Fatalf("rdwr write: %v", err)
	}
	buf := make([]byte, 8)
	if n, err := fs.Read(root, h, 0, buf); err != nil || string(buf[:n]) != "self" {
		t.Fatalf("rdwr read: %q %v", buf[:n], err)
	}
	fs.Release(root, h)
}

// TestFIFONonblockRead: a nonblocking read on an empty pipe returns
// EAGAIN while a writer holds the other end and 0 (EOF) when no writer
// does, per pipe(7) — it never blocks.
func TestFIFONonblockRead(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)

	// No writer has opened: EOF, not a block.
	if n, err := fs.Read(root, rh, 0, buf); n != 0 || err != nil {
		t.Fatalf("read with no writer: n=%d err=%v, want 0/nil", n, err)
	}

	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	// Empty pipe with a live writer: EAGAIN.
	if _, err := fs.Read(root, rh, 0, buf); err != vfs.EAGAIN {
		t.Fatalf("read on empty pipe with live writer: %v, want EAGAIN", err)
	}
	// Data present: delivered normally.
	if _, err := fs.Write(root, wh, 0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read with data: n=%d err=%v", n, err)
	}
	// Drained again with the writer still open: EAGAIN again.
	if _, err := fs.Read(root, rh, 0, buf); err != vfs.EAGAIN {
		t.Fatalf("read on drained pipe: %v, want EAGAIN", err)
	}
	// Writer gone: EOF.
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Read(root, rh, 0, buf); n != 0 || err != nil {
		t.Fatalf("read after writer close: n=%d err=%v, want 0/nil", n, err)
	}
}

// TestFIFONonblockWriteAfterReaderClose: a nonblocking write after the
// last reader closed fails with EPIPE immediately.
func TestFIFONonblockWriteAfterReaderClose(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock)
	if err != nil {
		t.Fatalf("nonblocking write open with a reader present: %v", err)
	}
	if err := fs.Release(root, rh); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, werr := fs.Write(root, wh, 0, []byte("x"))
		done <- werr
	}()
	select {
	case err := <-done:
		if err != vfs.EPIPE {
			t.Fatalf("write after last reader close: %v, want EPIPE", err)
		}
	case <-time.After(time.Second):
		t.Fatal("nonblocking write blocked")
	}
}

// TestFIFONonblockWriteOpenWithoutReader: opening a FIFO write-only
// with O_NONBLOCK and no reader fails with ENXIO, per fifo(7).
func TestFIFONonblockWriteOpenWithoutReader(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	if _, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock); err != vfs.ENXIO {
		t.Fatalf("nonblocking write open with no reader: %v, want ENXIO", err)
	}
	// A blocking write open still succeeds (open-until-peer is not
	// modelled), and so does a nonblocking one once a reader exists.
	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock); err != nil {
		t.Fatalf("nonblocking write open with reader present: %v", err)
	}
	_ = rh
}
