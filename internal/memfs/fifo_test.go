package memfs

import (
	"context"
	"testing"
	"time"

	"cntr/internal/vfs"
)

func mkfifo(t *testing.T, fs *FS, name string) vfs.Ino {
	t.Helper()
	attr, err := fs.Mknod(vfs.RootOp(), vfs.RootIno, name, vfs.TypeFIFO, 0o644, 0)
	if err != nil {
		t.Fatal(err)
	}
	return attr.Ino
}

// openPair opens the FIFO's read and write ends concurrently: under
// open-until-peer semantics neither blocking open completes alone.
func openPair(t *testing.T, fs *FS, ino vfs.Ino) (rh, wh vfs.Handle) {
	t.Helper()
	type res struct {
		h   vfs.Handle
		err error
	}
	rc := make(chan res, 1)
	go func() {
		h, err := fs.Open(vfs.RootOp(), ino, vfs.ORdonly)
		rc <- res{h, err}
	}()
	wh, err := fs.Open(vfs.RootOp(), ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	r := <-rc
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.h, wh
}

// TestFIFOWriterCloseDeliversEOF: a blocked reader wakes with EOF when
// the last writer closes, and subsequent reads see EOF immediately.
func TestFIFOWriterCloseDeliversEOF(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, wh := openPair(t, fs, ino)
	if _, err := fs.Write(root, wh, 0, []byte("tail")); err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		buf := make([]byte, 16)
		n, rerr := fs.Read(root, rh, 0, buf)
		if rerr == nil && string(buf[:n]) != "tail" {
			rerr = vfs.EIO
		}
		if rerr == nil {
			// Drain: the next read must block until the writer closes,
			// then deliver EOF.
			n, rerr = fs.Read(root, rh, 0, buf)
		}
		done <- result{n, rerr}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("read finished before writer close: %+v", r)
	default:
	}
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || r.n != 0 {
			t.Fatalf("EOF read: n=%d err=%v, want 0,nil", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("last-writer close did not wake the reader")
	}
	// EOF is sticky while no writer exists.
	if n, err := fs.Read(root, rh, 0, make([]byte, 4)); n != 0 || err != nil {
		t.Fatalf("post-EOF read: n=%d err=%v", n, err)
	}
	// A new writer revives the stream.
	wh2, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh2, 0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("revived pipe read: %q %v", buf[:n], err)
	}
	fs.Release(root, wh2)
	fs.Release(root, rh)
}

// TestFIFOReaderCloseBreaksPipe: once the read side has come and gone,
// writes fail with EPIPE.
func TestFIFOReaderCloseBreaksPipe(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, wh := openPair(t, fs, ino)
	if _, err := fs.Write(root, wh, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Release(root, rh); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, wh, 0, []byte("x")); vfs.ToErrno(err) != vfs.EPIPE {
		t.Fatalf("write after reader close: %v, want EPIPE", err)
	}
	fs.Release(root, wh)
}

// TestFIFOOpenUntilPeer is the open(2) blocking matrix of fifo(7),
// sibling to the O_NONBLOCK matrix below: a blocking single-direction
// open parks until the opposite end is held, O_RDWR never parks, a
// parked open is woken by a nonblocking peer, and an interrupted park
// unwinds with EINTR leaving no registered (or historical) end behind.
func TestFIFOOpenUntilPeer(t *testing.T) {
	root := vfs.RootOp()

	// assertParks starts the open and fails the test if it completes
	// before a peer exists; the returned channel delivers the result.
	type res struct {
		h   vfs.Handle
		err error
	}
	assertParks := func(t *testing.T, fs *FS, op *vfs.Op, ino vfs.Ino, flags vfs.OpenFlags) chan res {
		t.Helper()
		c := make(chan res, 1)
		go func() {
			h, err := fs.Open(op, ino, flags)
			c <- res{h, err}
		}()
		time.Sleep(10 * time.Millisecond)
		select {
		case r := <-c:
			t.Fatalf("open(%v) completed with no peer: h=%v err=%v", flags, r.h, r.err)
		default:
		}
		return c
	}
	await := func(t *testing.T, c chan res) vfs.Handle {
		t.Helper()
		select {
		case r := <-c:
			if r.err != nil {
				t.Fatal(r.err)
			}
			return r.h
		case <-time.After(5 * time.Second):
			t.Fatal("parked open never woke")
			return 0
		}
	}

	t.Run("reader-parks-until-writer", func(t *testing.T) {
		fs := New(Options{})
		ino := mkfifo(t, fs, "pipe")
		c := assertParks(t, fs, root, ino, vfs.ORdonly)
		wh, err := fs.Open(root, ino, vfs.OWronly)
		if err != nil {
			t.Fatal(err)
		}
		rh := await(t, c)
		// The pair is live: data flows, and the reader was parked in
		// open — not in read — so this read returns as soon as data is
		// written.
		if _, err := fs.Write(root, wh, 0, []byte("hi")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "hi" {
			t.Fatalf("read after paired open: %q %v", buf[:n], err)
		}
	})

	t.Run("writer-parks-until-reader", func(t *testing.T) {
		fs := New(Options{})
		ino := mkfifo(t, fs, "pipe")
		c := assertParks(t, fs, root, ino, vfs.OWronly)
		rh, err := fs.Open(root, ino, vfs.ORdonly)
		if err != nil {
			t.Fatal(err)
		}
		wh := await(t, c)
		fs.Release(root, wh)
		fs.Release(root, rh)
	})

	t.Run("rdwr-never-parks", func(t *testing.T) {
		fs := New(Options{})
		ino := mkfifo(t, fs, "pipe")
		h, err := fs.Open(root, ino, vfs.ORdwr)
		if err != nil {
			t.Fatal(err)
		}
		fs.Release(root, h)
	})

	t.Run("nonblock-peer-wakes-parked-open", func(t *testing.T) {
		fs := New(Options{})
		ino := mkfifo(t, fs, "pipe")
		c := assertParks(t, fs, root, ino, vfs.ORdonly)
		// A parked reader is a present reader: the nonblocking write-only
		// open succeeds (no ENXIO) and its registration wakes the park.
		wh, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock)
		if err != nil {
			t.Fatalf("nonblocking write open with a parked reader: %v", err)
		}
		rh := await(t, c)
		fs.Release(root, wh)
		fs.Release(root, rh)
	})

	t.Run("interrupt-unwinds-park", func(t *testing.T) {
		fs := New(Options{})
		ino := mkfifo(t, fs, "pipe")
		ctx, cancel := context.WithCancel(context.Background())
		op := vfs.NewOp(ctx, vfs.Root())
		c := assertParks(t, fs, op, ino, vfs.ORdonly)
		cancel()
		select {
		case r := <-c:
			if vfs.ToErrno(r.err) != vfs.EINTR {
				t.Fatalf("interrupted open: h=%v err=%v, want EINTR", r.h, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancel did not unwind the parked open")
		}
		// The aborted open left nothing behind: no live reader (ENXIO for
		// a nonblocking writer) and no reader history (a fresh pair still
		// writes without EPIPE).
		if _, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock); err != vfs.ENXIO {
			t.Fatalf("nonblocking write open after aborted reader: %v, want ENXIO", err)
		}
		rh, wh := openPair(t, fs, ino)
		if _, err := fs.Write(root, wh, 0, []byte("x")); err != nil {
			t.Fatalf("write on fresh pair after aborted open: %v", err)
		}
		fs.Release(root, rh)
		fs.Release(root, wh)
	})
}

// TestFIFOReadWriteEnd: an O_RDWR open holds both ends, so it neither
// breaks the pipe for itself nor sees EOF while it stays open.
func TestFIFOReadWriteEnd(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")
	h, err := fs.Open(root, ino, vfs.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, h, 0, []byte("self")); err != nil {
		t.Fatalf("rdwr write: %v", err)
	}
	buf := make([]byte, 8)
	if n, err := fs.Read(root, h, 0, buf); err != nil || string(buf[:n]) != "self" {
		t.Fatalf("rdwr read: %q %v", buf[:n], err)
	}
	fs.Release(root, h)
}

// TestFIFONonblockRead: a nonblocking read on an empty pipe returns
// EAGAIN while a writer holds the other end and 0 (EOF) when no writer
// does, per pipe(7) — it never blocks.
func TestFIFONonblockRead(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)

	// No writer has opened: EOF, not a block.
	if n, err := fs.Read(root, rh, 0, buf); n != 0 || err != nil {
		t.Fatalf("read with no writer: n=%d err=%v, want 0/nil", n, err)
	}

	wh, err := fs.Open(root, ino, vfs.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	// Empty pipe with a live writer: EAGAIN.
	if _, err := fs.Read(root, rh, 0, buf); err != vfs.EAGAIN {
		t.Fatalf("read on empty pipe with live writer: %v, want EAGAIN", err)
	}
	// Data present: delivered normally.
	if _, err := fs.Write(root, wh, 0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Read(root, rh, 0, buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read with data: n=%d err=%v", n, err)
	}
	// Drained again with the writer still open: EAGAIN again.
	if _, err := fs.Read(root, rh, 0, buf); err != vfs.EAGAIN {
		t.Fatalf("read on drained pipe: %v, want EAGAIN", err)
	}
	// Writer gone: EOF.
	if err := fs.Release(root, wh); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Read(root, rh, 0, buf); n != 0 || err != nil {
		t.Fatalf("read after writer close: n=%d err=%v, want 0/nil", n, err)
	}
}

// TestFIFONonblockWriteAfterReaderClose: a nonblocking write after the
// last reader closed fails with EPIPE immediately.
func TestFIFONonblockWriteAfterReaderClose(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock)
	if err != nil {
		t.Fatalf("nonblocking write open with a reader present: %v", err)
	}
	if err := fs.Release(root, rh); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, werr := fs.Write(root, wh, 0, []byte("x"))
		done <- werr
	}()
	select {
	case err := <-done:
		if err != vfs.EPIPE {
			t.Fatalf("write after last reader close: %v, want EPIPE", err)
		}
	case <-time.After(time.Second):
		t.Fatal("nonblocking write blocked")
	}
}

// TestFIFONonblockWriteOpenWithoutReader: opening a FIFO write-only
// with O_NONBLOCK and no reader fails with ENXIO, per fifo(7).
func TestFIFONonblockWriteOpenWithoutReader(t *testing.T) {
	fs := New(Options{})
	root := vfs.RootOp()
	ino := mkfifo(t, fs, "pipe")

	if _, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock); err != vfs.ENXIO {
		t.Fatalf("nonblocking write open with no reader: %v, want ENXIO", err)
	}
	// Once a reader exists, both the nonblocking and the blocking write
	// open succeed immediately (the blocking one has its peer).
	rh, err := fs.Open(root, ino, vfs.ORdonly|vfs.ONonblock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(root, ino, vfs.OWronly|vfs.ONonblock); err != nil {
		t.Fatalf("nonblocking write open with reader present: %v", err)
	}
	if _, err := fs.Open(root, ino, vfs.OWronly); err != nil {
		t.Fatalf("blocking write open with reader present: %v", err)
	}
	_ = rh
}
