// Package memfs implements a complete in-memory POSIX filesystem over the
// vfs.FS interface. It is the repository's stand-in for tmpfs and ext4:
// the xfstests-style regression suite (internal/xfstests) runs against it
// directly as the "native" baseline and through the FUSE stack
// (internal/fuse + internal/cntrfs) as the system under test.
//
// Supported semantics include hard links, symlinks, sparse files with
// block accounting, O_APPEND/O_TRUNC/O_EXCL/O_DIRECT, setuid/setgid
// clearing on write and chown, SGID inheritance from parent directories,
// POSIX ACLs via the system.posix_acl_access xattr (including the
// chmod-clears-SGID interaction exercised by xfstests #375), RLIMIT_FSIZE
// enforcement (#228), sticky-bit deletion restrictions, renameat2 flags,
// fallocate with hole punching, and persistent exportable inodes
// (name_to_handle_at, #426).
package memfs

import (
	"strings"
	"sync"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/vfs"
)

const blockSize = 4096

// Options configures a filesystem instance.
type Options struct {
	// Capacity limits total data bytes; 0 means 1 TiB.
	Capacity int64
	// Now supplies timestamps; nil uses a deterministic logical clock.
	Now func() time.Time
	// Store is the backend blob store file content lives in; nil uses a
	// private map-backed store (blobstore.NewMem), the historical
	// behaviour. A shared content-addressed store (blobstore.CAS) makes
	// identical blocks written by any number of files — or any number
	// of filesystems sharing the store — occupy storage once.
	Store blobstore.Store
}

// FS is the in-memory filesystem. The zero value is not usable; call New.
type FS struct {
	mu      sync.RWMutex
	inodes  map[vfs.Ino]*inode
	handles map[vfs.Handle]*openFile
	nextIno vfs.Ino
	nextH   vfs.Handle
	used    int64 // materialized data bytes (logical: blockSize per block)
	cap     int64
	store   blobstore.Store
	now     func() time.Time
	logical time.Duration
}

type inode struct {
	attr vfs.Attr
	// blocks maps block index -> backend store reference (sparse). A
	// block's blob holds the written extent within the block (≤
	// blockSize); bytes past the blob's length read as zeros.
	blocks map[int64]blobstore.Ref
	target string // symlink target
	xattrs map[string][]byte
	// children and parent are set for directories.
	children map[string]vfs.Ino
	parent   vfs.Ino
	// openCount keeps unlinked-but-open inodes alive.
	openCount int
	// pipe backs FIFO inodes: reads block on it until data arrives or the
	// operation is interrupted.
	pipe *pipeBuf
}

type openFile struct {
	ino   vfs.Ino
	flags vfs.OpenFlags
	dir   bool
}

// New creates an empty filesystem with a root directory owned by root.
func New(opts Options) *FS {
	fs := &FS{
		inodes:  make(map[vfs.Ino]*inode),
		handles: make(map[vfs.Handle]*openFile),
		nextIno: vfs.RootIno + 1,
		nextH:   1,
		cap:     opts.Capacity,
		store:   opts.Store,
		now:     opts.Now,
	}
	if fs.cap == 0 {
		fs.cap = 1 << 40
	}
	if fs.store == nil {
		fs.store = blobstore.NewMem()
	}
	if fs.now == nil {
		fs.now = fs.logicalNow
	}
	t := fs.now()
	fs.inodes[vfs.RootIno] = &inode{
		attr: vfs.Attr{
			Ino: vfs.RootIno, Type: vfs.TypeDirectory, Mode: 0o755,
			Nlink: 2, Atime: t, Mtime: t, Ctime: t,
		},
		children: make(map[string]vfs.Ino),
		parent:   vfs.RootIno,
		xattrs:   make(map[string][]byte),
	}
	return fs
}

// logicalNow is a deterministic clock: a fixed epoch plus a strictly
// increasing logical offset, so timestamp-ordering tests are stable.
func (fs *FS) logicalNow() time.Time {
	fs.logical += time.Microsecond
	return time.Date(2018, 7, 11, 0, 0, 0, 0, time.UTC).Add(fs.logical)
}

func (fs *FS) get(ino vfs.Ino) (*inode, error) {
	n, ok := fs.inodes[ino]
	if !ok {
		return nil, vfs.ESTALE
	}
	return n, nil
}

func (fs *FS) getDir(c *vfs.Cred, ino vfs.Ino) (*inode, error) {
	n, err := fs.get(ino)
	if err != nil {
		return nil, err
	}
	if n.attr.Type != vfs.TypeDirectory {
		return nil, vfs.ENOTDIR
	}
	return n, nil
}

func checkName(name string) error {
	switch {
	case name == "" || name == "." || name == "..":
		return vfs.EINVAL
	case len(name) > vfs.MaxNameLen:
		return vfs.ENAMETOOLONG
	case strings.ContainsRune(name, '/'):
		return vfs.EINVAL
	}
	return nil
}

// Lookup implements vfs.FS.
func (fs *FS) Lookup(op *vfs.Op, parent vfs.Ino, name string) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, err := fs.getDir(c, parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	if !c.MayExec(&dir.attr) {
		return vfs.Attr{}, vfs.EACCES
	}
	switch name {
	case ".":
		return dir.attr, nil
	case "..":
		p, err := fs.get(dir.parent)
		if err != nil {
			return vfs.Attr{}, err
		}
		return p.attr, nil
	}
	child, ok := dir.children[name]
	if !ok {
		return vfs.Attr{}, vfs.ENOENT
	}
	n, err := fs.get(child)
	if err != nil {
		return vfs.Attr{}, err
	}
	return n.attr, nil
}

// Forget implements vfs.FS; memfs inodes are persistent, so there is no
// per-lookup state to drop.
func (fs *FS) Forget(op *vfs.Op, ino vfs.Ino, nlookup uint64) {}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(op *vfs.Op, ino vfs.Ino) (vfs.Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	return n.attr, nil
}

// Setattr implements vfs.FS, including chmod/chown side effects on the
// setuid/setgid bits and RLIMIT_FSIZE enforcement on truncation-growth.
func (fs *FS) Setattr(op *vfs.Op, ino vfs.Ino, mask vfs.SetattrMask, attr vfs.Attr) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	now := fs.now()
	if mask.Has(vfs.SetMode) {
		if !c.IsOwner(&n.attr) {
			return vfs.Attr{}, vfs.EPERM
		}
		mode := attr.Mode & (vfs.ModePerm | vfs.ModeSetUID | vfs.ModeSetGID | vfs.ModeSticky)
		// POSIX: chmod by a caller that is not a member of the file's
		// owning group (and lacks CAP_FSETID) must clear the SGID bit.
		// With a POSIX ACL present the owning group is still the file
		// gid; this is the semantic xfstests #375 checks and the one a
		// FUSE passthrough loses when it delegates via setfsuid.
		if mode&vfs.ModeSetGID != 0 && !c.InGroup(n.attr.GID) && !c.Caps.Has(vfs.CapFsetid) {
			mode &^= vfs.ModeSetGID
		}
		n.attr.Mode = mode
		n.attr.Ctime = now
	}
	if mask.Has(vfs.SetUID) || mask.Has(vfs.SetGID) {
		if err := fs.applyChown(c, n, mask, attr); err != nil {
			return vfs.Attr{}, err
		}
		n.attr.Ctime = now
	}
	if mask.Has(vfs.SetSize) {
		if n.attr.Type == vfs.TypeDirectory {
			return vfs.Attr{}, vfs.EISDIR
		}
		if !c.MayWrite(&n.attr) && !c.IsOwner(&n.attr) {
			return vfs.Attr{}, vfs.EACCES
		}
		if attr.Size < 0 {
			return vfs.Attr{}, vfs.EINVAL
		}
		if c.FSizeLimit > 0 && attr.Size > c.FSizeLimit {
			return vfs.Attr{}, vfs.EFBIG
		}
		if err := fs.truncate(n, attr.Size); err != nil {
			return vfs.Attr{}, err
		}
		n.attr.Mtime, n.attr.Ctime = now, now
	}
	if mask.Has(vfs.SetAtime) {
		n.attr.Atime = attr.Atime
		n.attr.Ctime = now
	}
	if mask.Has(vfs.SetMtime) {
		n.attr.Mtime = attr.Mtime
		n.attr.Ctime = now
	}
	if mask.Has(vfs.SetAtimeNow) {
		n.attr.Atime = now
	}
	if mask.Has(vfs.SetMtimeNow) {
		n.attr.Mtime = now
	}
	return n.attr, nil
}

func (fs *FS) applyChown(c *vfs.Cred, n *inode, mask vfs.SetattrMask, attr vfs.Attr) error {
	if mask.Has(vfs.SetUID) && attr.UID != n.attr.UID && !c.Caps.Has(vfs.CapChown) {
		return vfs.EPERM
	}
	if mask.Has(vfs.SetGID) && attr.GID != n.attr.GID {
		if !c.Caps.Has(vfs.CapChown) && !(c.IsOwner(&n.attr) && c.InGroup(attr.GID)) {
			return vfs.EPERM
		}
	}
	if mask.Has(vfs.SetUID) {
		n.attr.UID = attr.UID
	}
	if mask.Has(vfs.SetGID) {
		n.attr.GID = attr.GID
	}
	// chown clears setuid/setgid on regular files unless privileged.
	if n.attr.Type == vfs.TypeRegular && !c.Caps.Has(vfs.CapFsetid) {
		n.attr.Mode &^= vfs.ModeSetUID
		if n.attr.Mode&0o010 != 0 { // only when group-executable, per POSIX
			n.attr.Mode &^= vfs.ModeSetGID
		}
	}
	return nil
}

func (fs *FS) truncate(n *inode, size int64) error {
	old := n.attr.Size
	if size == old {
		return nil
	}
	if size < old {
		// Drop whole blocks past the new end and trim the boundary
		// block's blob so the tail reads as zeros.
		firstDead := (size + blockSize - 1) / blockSize
		for idx := range n.blocks {
			if idx >= firstDead {
				fs.freeBlock(n, idx)
			}
		}
		if keep := size % blockSize; keep != 0 {
			idx := size / blockSize
			if ref, ok := n.blocks[idx]; ok {
				b, err := fs.getBlob(ref)
				if err != nil {
					return err
				}
				if int64(len(b)) > keep {
					if err := fs.replaceBlock(n, idx, ref, b[:keep]); err != nil {
						return err
					}
				}
			}
		}
	}
	n.attr.Size = size
	return nil
}

// getBlob fetches a block's content from the backend store. Any store
// failure — a lost or corrupted chunk — surfaces as EIO: the reference
// is held by a live inode, so it must resolve.
func (fs *FS) getBlob(ref blobstore.Ref) ([]byte, error) {
	b, err := fs.store.Get(ref)
	if err != nil {
		return nil, vfs.EIO
	}
	return b, nil
}

// readBlock returns the stored content of block idx (nil for a hole).
func (fs *FS) readBlock(n *inode, idx int64) ([]byte, error) {
	ref, ok := n.blocks[idx]
	if !ok {
		return nil, nil
	}
	return fs.getBlob(ref)
}

// materializeBlock charges capacity for a block seen for the first time
// and records its store reference. Capacity accounting is logical —
// blockSize per materialized block regardless of backend dedup — so
// ENOSPC behaviour is independent of which store backs the filesystem.
func (fs *FS) materializeBlock(n *inode, idx int64, ref blobstore.Ref) {
	if n.blocks == nil {
		n.blocks = make(map[int64]blobstore.Ref)
	}
	n.blocks[idx] = ref
	n.attr.Blocks += blockSize / 512
	fs.used += blockSize
}

// replaceBlock swaps block idx's content for data: the new blob is
// stored first, then the old reference is dropped (crash-ordering a real
// CAS would use too).
func (fs *FS) replaceBlock(n *inode, idx int64, oldRef blobstore.Ref, data []byte) error {
	ref, err := fs.store.Put(data)
	if err != nil {
		return vfs.EIO
	}
	n.blocks[idx] = ref
	fs.store.Delete(oldRef)
	return nil
}

// writeBlock writes data into block idx at offset bo, read-modify-write
// through the backend store. New blocks are charged against capacity.
func (fs *FS) writeBlock(n *inode, idx, bo int64, data []byte) error {
	oldRef, exists := n.blocks[idx]
	if !exists && fs.used+blockSize > fs.cap {
		return vfs.ENOSPC
	}
	// Fast path: a fresh block written from offset 0 needs no merge.
	if !exists && bo == 0 {
		ref, err := fs.store.Put(data)
		if err != nil {
			return vfs.EIO
		}
		fs.materializeBlock(n, idx, ref)
		return nil
	}
	var old []byte
	if exists {
		var err error
		if old, err = fs.getBlob(oldRef); err != nil {
			return err
		}
	}
	newLen := bo + int64(len(data))
	if int64(len(old)) > newLen {
		newLen = int64(len(old))
	}
	buf := make([]byte, newLen)
	copy(buf, old)
	copy(buf[bo:], data)
	if exists {
		return fs.replaceBlock(n, idx, oldRef, buf)
	}
	ref, err := fs.store.Put(buf)
	if err != nil {
		return vfs.EIO
	}
	fs.materializeBlock(n, idx, ref)
	return nil
}

func (fs *FS) freeBlock(n *inode, idx int64) {
	if ref, ok := n.blocks[idx]; ok {
		fs.store.Delete(ref)
		delete(n.blocks, idx)
		n.attr.Blocks -= blockSize / 512
		fs.used -= blockSize
	}
}

func (fs *FS) newInode(c *vfs.Cred, dir *inode, typ vfs.FileType, mode vfs.Mode, rdev uint32) *inode {
	now := fs.now()
	gid := c.FSGID
	m := mode
	// SGID directory: children inherit the directory's group; child
	// directories inherit the SGID bit itself.
	if dir.attr.Mode&vfs.ModeSetGID != 0 {
		gid = dir.attr.GID
		if typ != vfs.TypeDirectory {
			if !c.InGroup(gid) && !c.Caps.Has(vfs.CapFsetid) {
				m &^= vfs.ModeSetGID
			}
		} else {
			m |= vfs.ModeSetGID
		}
	}
	ino := fs.nextIno
	fs.nextIno++
	n := &inode{
		attr: vfs.Attr{
			Ino: ino, Type: typ, Mode: m, Nlink: 1,
			UID: c.FSUID, GID: gid, Rdev: rdev,
			Atime: now, Mtime: now, Ctime: now,
		},
		xattrs: make(map[string][]byte),
	}
	if typ == vfs.TypeDirectory {
		n.attr.Nlink = 2
		n.children = make(map[string]vfs.Ino)
	}
	fs.inodes[ino] = n
	return n
}

func (fs *FS) insertChild(c *vfs.Cred, parent vfs.Ino, name string, build func(dir *inode) (*inode, error)) (vfs.Attr, error) {
	if err := checkName(name); err != nil {
		return vfs.Attr{}, err
	}
	dir, err := fs.getDir(c, parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	if !c.MayWrite(&dir.attr) || !c.MayExec(&dir.attr) {
		return vfs.Attr{}, vfs.EACCES
	}
	if _, exists := dir.children[name]; exists {
		return vfs.Attr{}, vfs.EEXIST
	}
	n, err := build(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	dir.children[name] = n.attr.Ino
	if n.attr.Type == vfs.TypeDirectory {
		n.parent = parent
		dir.attr.Nlink++
	}
	now := fs.now()
	dir.attr.Mtime, dir.attr.Ctime = now, now
	return n.attr, nil
}

// Mknod implements vfs.FS.
func (fs *FS) Mknod(op *vfs.Op, parent vfs.Ino, name string, typ vfs.FileType, mode vfs.Mode, rdev uint32) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if typ == vfs.TypeDirectory {
		return vfs.Attr{}, vfs.EINVAL
	}
	if (typ == vfs.TypeCharDev || typ == vfs.TypeBlockDev) && !c.Caps.Has(vfs.CapMknod) {
		return vfs.Attr{}, vfs.EPERM
	}
	return fs.insertChild(c, parent, name, func(dir *inode) (*inode, error) {
		return fs.newInode(c, dir, typ, mode, rdev), nil
	})
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(op *vfs.Op, parent vfs.Ino, name string, mode vfs.Mode) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.insertChild(c, parent, name, func(dir *inode) (*inode, error) {
		return fs.newInode(c, dir, vfs.TypeDirectory, mode, 0), nil
	})
}

// Symlink implements vfs.FS.
func (fs *FS) Symlink(op *vfs.Op, parent vfs.Ino, name, target string) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if target == "" {
		return vfs.Attr{}, vfs.ENOENT
	}
	return fs.insertChild(c, parent, name, func(dir *inode) (*inode, error) {
		n := fs.newInode(c, dir, vfs.TypeSymlink, 0o777, 0)
		n.target = target
		n.attr.Size = int64(len(target))
		return n, nil
	})
}

// Readlink implements vfs.FS.
func (fs *FS) Readlink(op *vfs.Op, ino vfs.Ino) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(ino)
	if err != nil {
		return "", err
	}
	if n.attr.Type != vfs.TypeSymlink {
		return "", vfs.EINVAL
	}
	return n.target, nil
}

// stickyDenied implements the sticky-bit deletion restriction: in a
// sticky directory only the file owner, directory owner, or a privileged
// caller may remove entries.
func stickyDenied(c *vfs.Cred, dir, child *inode) bool {
	if dir.attr.Mode&vfs.ModeSticky == 0 {
		return false
	}
	if c.Caps.Has(vfs.CapFowner) {
		return false
	}
	return c.FSUID != child.attr.UID && c.FSUID != dir.attr.UID
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(op *vfs.Op, parent vfs.Ino, name string) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := checkName(name); err != nil {
		return err
	}
	dir, err := fs.getDir(c, parent)
	if err != nil {
		return err
	}
	if !c.MayWrite(&dir.attr) || !c.MayExec(&dir.attr) {
		return vfs.EACCES
	}
	child, ok := dir.children[name]
	if !ok {
		return vfs.ENOENT
	}
	n, err := fs.get(child)
	if err != nil {
		return err
	}
	if n.attr.Type == vfs.TypeDirectory {
		return vfs.EISDIR
	}
	if stickyDenied(c, dir, n) {
		return vfs.EPERM
	}
	delete(dir.children, name)
	now := fs.now()
	dir.attr.Mtime, dir.attr.Ctime = now, now
	n.attr.Nlink--
	n.attr.Ctime = now
	fs.maybeReap(child, n)
	return nil
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(op *vfs.Op, parent vfs.Ino, name string) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := checkName(name); err != nil {
		return err
	}
	dir, err := fs.getDir(c, parent)
	if err != nil {
		return err
	}
	if !c.MayWrite(&dir.attr) || !c.MayExec(&dir.attr) {
		return vfs.EACCES
	}
	child, ok := dir.children[name]
	if !ok {
		return vfs.ENOENT
	}
	n, err := fs.get(child)
	if err != nil {
		return err
	}
	if n.attr.Type != vfs.TypeDirectory {
		return vfs.ENOTDIR
	}
	if len(n.children) != 0 {
		return vfs.ENOTEMPTY
	}
	if stickyDenied(c, dir, n) {
		return vfs.EPERM
	}
	delete(dir.children, name)
	dir.attr.Nlink--
	now := fs.now()
	dir.attr.Mtime, dir.attr.Ctime = now, now
	delete(fs.inodes, child)
	return nil
}

// maybeReap frees an inode's storage once it has no links and no open
// handles, dropping its store references so shared chunks lose one
// count (and private ones are freed).
func (fs *FS) maybeReap(ino vfs.Ino, n *inode) {
	if n.attr.Nlink == 0 && n.openCount == 0 {
		for idx := range n.blocks {
			fs.freeBlock(n, idx)
		}
		delete(fs.inodes, ino)
	}
}

// isAncestor reports whether a is an ancestor of (or equal to) b.
func (fs *FS) isAncestor(a, b vfs.Ino) bool {
	for {
		if a == b {
			return true
		}
		n, ok := fs.inodes[b]
		if !ok || n.parent == b {
			return false
		}
		b = n.parent
	}
}

// Rename implements vfs.FS including RENAME_NOREPLACE and RENAME_EXCHANGE.
func (fs *FS) Rename(op *vfs.Op, oldParent vfs.Ino, oldName string, newParent vfs.Ino, newName string, flags vfs.RenameFlags) error {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := checkName(oldName); err != nil {
		return err
	}
	if err := checkName(newName); err != nil {
		return err
	}
	od, err := fs.getDir(c, oldParent)
	if err != nil {
		return err
	}
	nd, err := fs.getDir(c, newParent)
	if err != nil {
		return err
	}
	for _, d := range []*inode{od, nd} {
		if !c.MayWrite(&d.attr) || !c.MayExec(&d.attr) {
			return vfs.EACCES
		}
	}
	srcIno, ok := od.children[oldName]
	if !ok {
		return vfs.ENOENT
	}
	src, err := fs.get(srcIno)
	if err != nil {
		return err
	}
	if stickyDenied(c, od, src) {
		return vfs.EPERM
	}
	dstIno, dstExists := nd.children[newName]
	if oldParent == newParent && oldName == newName {
		return nil
	}
	if src.attr.Type == vfs.TypeDirectory && fs.isAncestor(srcIno, newParent) {
		return vfs.EINVAL
	}
	if flags&vfs.RenameExchange != 0 {
		if !dstExists {
			return vfs.ENOENT
		}
		dst, err := fs.get(dstIno)
		if err != nil {
			return err
		}
		od.children[oldName], nd.children[newName] = dstIno, srcIno
		fs.fixupDirParent(src, newParent, od, nd)
		fs.fixupDirParent(dst, oldParent, nd, od)
		now := fs.now()
		od.attr.Mtime, od.attr.Ctime = now, now
		nd.attr.Mtime, nd.attr.Ctime = now, now
		return nil
	}
	if dstExists {
		if flags&vfs.RenameNoReplace != 0 {
			return vfs.EEXIST
		}
		dst, err := fs.get(dstIno)
		if err != nil {
			return err
		}
		if stickyDenied(c, nd, dst) {
			return vfs.EPERM
		}
		if dst.attr.Type == vfs.TypeDirectory {
			if src.attr.Type != vfs.TypeDirectory {
				return vfs.EISDIR
			}
			if len(dst.children) != 0 {
				return vfs.ENOTEMPTY
			}
			nd.attr.Nlink--
			delete(fs.inodes, dstIno)
		} else {
			if src.attr.Type == vfs.TypeDirectory {
				return vfs.ENOTDIR
			}
			dst.attr.Nlink--
			fs.maybeReap(dstIno, dst)
		}
	}
	delete(od.children, oldName)
	nd.children[newName] = srcIno
	if src.attr.Type == vfs.TypeDirectory && oldParent != newParent {
		od.attr.Nlink--
		nd.attr.Nlink++
		src.parent = newParent
	}
	now := fs.now()
	od.attr.Mtime, od.attr.Ctime = now, now
	nd.attr.Mtime, nd.attr.Ctime = now, now
	src.attr.Ctime = now
	return nil
}

func (fs *FS) fixupDirParent(n *inode, newParent vfs.Ino, from, to *inode) {
	if n.attr.Type != vfs.TypeDirectory {
		return
	}
	if n.parent != newParent {
		from.attr.Nlink--
		to.attr.Nlink++
	}
	n.parent = newParent
}

// Link implements vfs.FS.
func (fs *FS) Link(op *vfs.Op, ino vfs.Ino, parent vfs.Ino, name string) (vfs.Attr, error) {
	c := op.Cred
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	if n.attr.Type == vfs.TypeDirectory {
		return vfs.Attr{}, vfs.EPERM
	}
	return fs.insertChild(c, parent, name, func(dir *inode) (*inode, error) {
		n.attr.Nlink++
		n.attr.Ctime = fs.now()
		return n, nil
	})
}
