package memfs

import (
	"bytes"
	"testing"

	"cntr/internal/blobstore"
	"cntr/internal/sim"
	"cntr/internal/vfs"
)

// backends returns a fresh memfs on every backend store, keyed by name.
// The core behaviour suite below must pass identically on all of them:
// the store is a storage detail, never a semantic one.
func backends() map[string]*FS {
	clock := sim.NewClock()
	model := sim.DefaultCostModel()
	return map[string]*FS{
		"mem": New(Options{Store: blobstore.NewMem()}),
		"cas": New(Options{Store: blobstore.NewCAS(blobstore.CASOptions{})}),
		"dir": New(Options{Store: blobstore.NewDir(blobstore.DirOptions{
			Disk: sim.NewDisk(clock, model), Clock: clock, Model: model})}),
	}
}

func TestBackendsRoundTrip(t *testing.T) {
	for name, fs := range backends() {
		t.Run(name, func(t *testing.T) {
			c := vfs.NewClient(fs, vfs.Root())
			data := make([]byte, 3*blockSize+100)
			for i := range data {
				data[i] = byte(i % 251)
			}
			if err := c.WriteFile("/f", data, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadFile("/f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("roundtrip mismatch")
			}
		})
	}
}

func TestBackendsOverwriteAndTruncate(t *testing.T) {
	for name, fs := range backends() {
		t.Run(name, func(t *testing.T) {
			c := vfs.NewClient(fs, vfs.Root())
			c.WriteFile("/f", bytes.Repeat([]byte("a"), 2*blockSize), 0o644)
			f, err := c.Open("/f", vfs.ORdwr, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// Overwrite inside the first block (read-modify-write path).
			if _, err := f.WriteAt([]byte("XYZ"), 10); err != nil {
				t.Fatal(err)
			}
			// Shrink to a non-block boundary (boundary blob trim).
			if err := f.Truncate(blockSize + 7); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadFile("/f")
			if err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte("a"), blockSize+7)
			copy(want[10:], "XYZ")
			if !bytes.Equal(got, want) {
				t.Fatal("overwrite+truncate mismatch")
			}
			// Grow back: the region past the old end reads as zeros.
			if err := f.Truncate(blockSize + 100); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 93)
			if _, err := f.ReadAt(buf, blockSize+7); err != nil {
				t.Fatal(err)
			}
			for _, b := range buf {
				if b != 0 {
					t.Fatal("grown region must read zeros")
				}
			}
		})
	}
}

func TestBackendsSparseHoles(t *testing.T) {
	for name, fs := range backends() {
		t.Run(name, func(t *testing.T) {
			c := vfs.NewClient(fs, vfs.Root())
			f, err := c.Open("/s", vfs.ORdwr|vfs.OCreat, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("end"), 10*blockSize); err != nil {
				t.Fatal(err)
			}
			attr, _ := f.Stat()
			if attr.Blocks != blockSize/512 {
				t.Fatalf("blocks = %d, want one block on every backend", attr.Blocks)
			}
			buf := make([]byte, 10)
			f.ReadAt(buf, 5*blockSize)
			for _, b := range buf {
				if b != 0 {
					t.Fatal("hole must read zeros")
				}
			}
		})
	}
}

// TestBackendsUnlinkFreesStore checks the GC chain end to end: removing
// the last name (and closing the last handle) must drop the inode's
// block references, so the store's physical bytes return to zero.
func TestBackendsUnlinkFreesStore(t *testing.T) {
	for name, fs := range backends() {
		t.Run(name, func(t *testing.T) {
			c := vfs.NewClient(fs, vfs.Root())
			c.WriteFile("/dead", bytes.Repeat([]byte("x"), 5*blockSize), 0o644)
			if st := fs.Store().Stats(); st.PhysicalBytes == 0 {
				t.Fatal("content must hit the store")
			}
			if err := c.Remove("/dead"); err != nil {
				t.Fatal(err)
			}
			if st := fs.Store().Stats(); st.PhysicalBytes != 0 {
				t.Fatalf("unlink leaked %d physical bytes", st.PhysicalBytes)
			}
		})
	}
}

// TestCASBackendDedups is the tentpole property at the filesystem layer:
// two files with identical content cost one set of chunks.
func TestCASBackendDedups(t *testing.T) {
	fs := New(Options{Store: blobstore.NewCAS(blobstore.CASOptions{})})
	c := vfs.NewClient(fs, vfs.Root())
	data := bytes.Repeat([]byte("tooling"), blockSize) // ~7 blocks
	c.WriteFile("/a", data, 0o644)
	after1 := fs.Store().Stats().PhysicalBytes
	c.WriteFile("/b", data, 0o644)
	after2 := fs.Store().Stats().PhysicalBytes
	if after2 != after1 {
		t.Fatalf("identical second file grew physical bytes %d -> %d", after1, after2)
	}
	if fs.UsedBytes() <= int64(len(data)) {
		t.Fatal("logical accounting must still bill both files")
	}
}

// TestCorruptChunkSurfacesEIO: a chunk failing its content check at the
// bottom of the stack must come back as EIO from read(2).
func TestCorruptChunkSurfacesEIO(t *testing.T) {
	cas := blobstore.NewCAS(blobstore.CASOptions{})
	fs := New(Options{Store: cas})
	c := vfs.NewClient(fs, vfs.Root())
	data := bytes.Repeat([]byte("q"), 2*blockSize)
	c.WriteFile("/f", data, 0o644)
	for _, ref := range fs.BlockRefs() {
		if !cas.CorruptForTest(ref) {
			t.Fatal("corruption hook failed")
		}
		break // first block is enough
	}
	_, err := c.ReadFile("/f")
	if vfs.ToErrno(err) != vfs.EIO {
		t.Fatalf("want EIO, got %v", err)
	}
}

// TestMissingChunkSurfacesEIO: same via the fault injector's not-found
// mode — the chaos-profile path.
func TestMissingChunkSurfacesEIO(t *testing.T) {
	cas := blobstore.NewCAS(blobstore.CASOptions{})
	inj := blobstore.NewFaultInjector(cas,
		blobstore.FaultRule{Op: blobstore.FaultGet, Err: blobstore.ErrNotFound, EveryN: 1})
	fs := New(Options{Store: inj})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", []byte("short"), 0o644)
	_, err := c.ReadFile("/f")
	if vfs.ToErrno(err) != vfs.EIO {
		t.Fatalf("want EIO, got %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("injector never fired")
	}
}

// TestBlockRefsLiveSet pins the BlockRefs accessor container builds rely
// on: one ref per materialized block, none after removal.
func TestBlockRefsLiveSet(t *testing.T) {
	fs := New(Options{Store: blobstore.NewCAS(blobstore.CASOptions{})})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/x", bytes.Repeat([]byte("r"), 3*blockSize), 0o644)
	if n := len(fs.BlockRefs()); n != 3 {
		t.Fatalf("BlockRefs = %d, want 3", n)
	}
	c.Remove("/x")
	if n := len(fs.BlockRefs()); n != 0 {
		t.Fatalf("BlockRefs after remove = %d", n)
	}
}
