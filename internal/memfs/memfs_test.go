package memfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"cntr/internal/vfs"
)

func newClient(t *testing.T) *vfs.Client {
	t.Helper()
	return vfs.NewClient(New(Options{}), vfs.Root())
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newClient(t)
	data := []byte("hello cntr")
	if err := c.WriteFile("/f", data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestWriteAcrossBlockBoundary(t *testing.T) {
	c := newClient(t)
	data := make([]byte, 3*blockSize+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := c.WriteFile("/big", data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block data mismatch")
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	c := newClient(t)
	f, err := c.Open("/sparse", vfs.ORdwr|vfs.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("end"), 100*blockSize); err != nil {
		t.Fatal(err)
	}
	attr, _ := f.Stat()
	if attr.Size != 100*blockSize+3 {
		t.Fatalf("size = %d", attr.Size)
	}
	// Only one block should be allocated.
	if attr.Blocks != blockSize/512 {
		t.Fatalf("blocks = %d, want %d", attr.Blocks, blockSize/512)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 50*blockSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole must read as zeros")
		}
	}
	f.Close()
}

func TestAppendMode(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/log", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/log", vfs.OWronly|vfs.OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("two"), 0); err != nil { // offset ignored under O_APPEND
		t.Fatal(err)
	}
	f.Close()
	got, _ := c.ReadFile("/log")
	if string(got) != "onetwo" {
		t.Fatalf("append result %q", got)
	}
}

func TestOTruncTruncates(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/t", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/t", vfs.OWronly|vfs.OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	attr, _ := c.Stat("/t")
	if attr.Size != 0 {
		t.Fatalf("size after O_TRUNC = %d", attr.Size)
	}
}

func TestOExclFailsOnExisting(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/x", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := c.Open("/x", vfs.OWronly|vfs.OCreat|vfs.OExcl, 0o644)
	if vfs.ToErrno(err) != vfs.EEXIST {
		t.Fatalf("err = %v, want EEXIST", err)
	}
}

func TestUnlinkedFileRemainsReadable(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/gone", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/gone", vfs.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/gone"); vfs.ToErrno(err) != vfs.ENOENT {
		t.Fatal("file should be gone from namespace")
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after unlink: %v", err)
	}
	if string(buf) != "data" {
		t.Fatal("data mismatch after unlink")
	}
	f.Close()
}

func TestHardLinks(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/a", []byte("shared"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	aAttr, _ := c.Stat("/a")
	bAttr, _ := c.Stat("/b")
	if aAttr.Ino != bAttr.Ino {
		t.Fatal("hard link must share inode")
	}
	if aAttr.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", aAttr.Nlink)
	}
	if err := c.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/b")
	if err != nil || string(got) != "shared" {
		t.Fatalf("after unlink: %q, %v", got, err)
	}
	bAttr, _ = c.Stat("/b")
	if bAttr.Nlink != 1 {
		t.Fatalf("nlink = %d, want 1", bAttr.Nlink)
	}
}

func TestLinkToDirectoryForbidden(t *testing.T) {
	c := newClient(t)
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("/d", "/d2"); vfs.ToErrno(err) != vfs.EPERM {
		t.Fatalf("link to dir: %v, want EPERM", err)
	}
}

func TestSymlinkResolution(t *testing.T) {
	c := newClient(t)
	if err := c.MkdirAll("/real/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/real/sub/file", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink("/real/sub", "/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/ln/file")
	if err != nil || string(got) != "x" {
		t.Fatalf("through symlink: %q, %v", got, err)
	}
	target, err := c.Readlink("/ln")
	if err != nil || target != "/real/sub" {
		t.Fatalf("readlink: %q, %v", target, err)
	}
	// Relative symlink.
	if err := c.Symlink("sub/file", "/real/rel"); err != nil {
		t.Fatal(err)
	}
	got, err = c.ReadFile("/real/rel")
	if err != nil || string(got) != "x" {
		t.Fatalf("relative symlink: %q, %v", got, err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	c := newClient(t)
	if err := c.Symlink("/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadFile("/a")
	if vfs.ToErrno(err) != vfs.ELOOP {
		t.Fatalf("err = %v, want ELOOP", err)
	}
}

func TestRenameBasic(t *testing.T) {
	c := newClient(t)
	if err := c.WriteFile("/src", []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/src"); vfs.ToErrno(err) != vfs.ENOENT {
		t.Fatal("src should be gone")
	}
	if got, err := c.ReadFile("/dst"); err != nil || string(got) != "v" {
		t.Fatalf("dst: %q, %v", got, err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	c := newClient(t)
	c.WriteFile("/a", []byte("a"), 0o644)
	c.WriteFile("/b", []byte("b"), 0o644)
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, _ := c.ReadFile("/b")
	if string(got) != "a" {
		t.Fatalf("b = %q, want a", got)
	}
}

func TestRenameNoReplace(t *testing.T) {
	c := newClient(t)
	c.WriteFile("/a", nil, 0o644)
	c.WriteFile("/b", nil, 0o644)
	ra, _ := c.Lresolve("/a")
	rb, _ := c.Lresolve("/b")
	err := c.FS.Rename(c.Op, ra.Parent, "a", rb.Parent, "b", vfs.RenameNoReplace)
	if vfs.ToErrno(err) != vfs.EEXIST {
		t.Fatalf("err = %v, want EEXIST", err)
	}
}

func TestRenameExchange(t *testing.T) {
	c := newClient(t)
	c.WriteFile("/a", []byte("A"), 0o644)
	c.WriteFile("/b", []byte("B"), 0o644)
	err := c.FS.Rename(c.Op, vfs.RootIno, "a", vfs.RootIno, "b", vfs.RenameExchange)
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := c.ReadFile("/a")
	gb, _ := c.ReadFile("/b")
	if string(ga) != "B" || string(gb) != "A" {
		t.Fatalf("exchange: a=%q b=%q", ga, gb)
	}
}

func TestRenameDirIntoOwnSubtree(t *testing.T) {
	c := newClient(t)
	if err := c.MkdirAll("/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	err := c.Rename("/d", "/d/sub/d")
	if vfs.ToErrno(err) != vfs.EINVAL {
		t.Fatalf("err = %v, want EINVAL", err)
	}
}

func TestRenameDirUpdatesDotDot(t *testing.T) {
	c := newClient(t)
	c.MkdirAll("/p1/d", 0o755)
	c.Mkdir("/p2", 0o755)
	if err := c.Rename("/p1/d", "/p2/d"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Resolve("/p2/d/..")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Resolve("/p2")
	if r.Ino != p2.Ino {
		t.Fatal(".. should point at new parent")
	}
}

func TestRmdirNonEmpty(t *testing.T) {
	c := newClient(t)
	c.MkdirAll("/d/sub", 0o755)
	err := c.Remove("/d")
	if vfs.ToErrno(err) != vfs.ENOTEMPTY {
		t.Fatalf("err = %v, want ENOTEMPTY", err)
	}
}

func TestReaddirSortedAndComplete(t *testing.T) {
	c := newClient(t)
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		if err := c.WriteFile("/"+n, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("got %d entries", len(ents))
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, e := range ents {
		if e.Name != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestReaddirOffsetResume(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	for _, n := range []string{"a", "b", "c", "d"} {
		c.WriteFile("/"+n, nil, 0o644)
	}
	h, err := fs.Opendir(c.Op, vfs.RootIno)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Releasedir(c.Op, h)
	first, err := fs.Readdir(c.Op, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Name != "." || first[1].Name != ".." {
		t.Fatal("dot entries must come first")
	}
	// Resume from the third entry's offset.
	rest, err := fs.Readdir(c.Op, h, first[2].Off)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(first)-3 {
		t.Fatalf("resume returned %d entries, want %d", len(rest), len(first)-3)
	}
}

func TestPermissionDeniedForOtherUser(t *testing.T) {
	fs := New(Options{})
	root := vfs.NewClient(fs, vfs.Root())
	if err := root.WriteFile("/secret", []byte("s"), 0o600); err != nil {
		t.Fatal(err)
	}
	user := vfs.NewClient(fs, vfs.User(1000, 1000))
	if _, err := user.ReadFile("/secret"); vfs.ToErrno(err) != vfs.EACCES {
		t.Fatalf("err = %v, want EACCES", err)
	}
}

func TestChmodClearsSetgidForNonGroupMember(t *testing.T) {
	fs := New(Options{})
	root := vfs.NewClient(fs, vfs.Root())
	if err := root.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Give the file to uid 1000 but a group they are not in.
	if err := root.Chown("/f", 1000, 5000); err != nil {
		t.Fatal(err)
	}
	user := vfs.NewClient(fs, vfs.User(1000, 1000))
	if err := user.Chmod("/f", 0o2755); err != nil {
		t.Fatal(err)
	}
	attr, _ := user.Stat("/f")
	if attr.Mode&vfs.ModeSetGID != 0 {
		t.Fatal("SGID must be cleared when chmod caller not in owning group")
	}
	// Root (CAP_FSETID) keeps the bit.
	if err := root.Chmod("/f", 0o2755); err != nil {
		t.Fatal(err)
	}
	attr, _ = root.Stat("/f")
	if attr.Mode&vfs.ModeSetGID == 0 {
		t.Fatal("privileged chmod must keep SGID")
	}
}

func TestWriteClearsSetuid(t *testing.T) {
	fs := New(Options{})
	root := vfs.NewClient(fs, vfs.Root())
	if err := root.WriteFile("/bin", []byte("#!"), 0o644); err != nil {
		t.Fatal(err)
	}
	root.Chown("/bin", 1000, 1000)
	root.Chmod("/bin", 0o4755)
	user := vfs.NewClient(fs, vfs.User(1000, 1000))
	f, err := user.Open("/bin", vfs.OWronly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("mod")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	attr, _ := user.Stat("/bin")
	if attr.Mode&vfs.ModeSetUID != 0 {
		t.Fatal("write must clear setuid")
	}
}

func TestSgidDirectoryInheritance(t *testing.T) {
	fs := New(Options{})
	root := vfs.NewClient(fs, vfs.Root())
	if err := root.Mkdir("/shared", 0o2775); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/shared", 0, 4242); err != nil {
		t.Fatal(err)
	}
	// Re-set SGID: chown may clear it on regular files but not dirs.
	if err := root.Chmod("/shared", 0o2777); err != nil {
		t.Fatal(err)
	}
	user := vfs.NewClient(fs, vfs.User(1000, 1000))
	if err := user.WriteFile("/shared/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	attr, _ := user.Stat("/shared/f")
	if attr.GID != 4242 {
		t.Fatalf("gid = %d, want inherited 4242", attr.GID)
	}
	if err := user.Mkdir("/shared/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	dattr, _ := user.Stat("/shared/sub")
	if dattr.GID != 4242 || dattr.Mode&vfs.ModeSetGID == 0 {
		t.Fatalf("subdir gid=%d mode=%o, want 4242 with SGID", dattr.GID, dattr.Mode)
	}
}

func TestRlimitFsizeEnforced(t *testing.T) {
	fs := New(Options{})
	cred := vfs.Root()
	cred.FSizeLimit = 100
	c := vfs.NewClient(fs, cred)
	f, err := c.Create("/limited", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(make([]byte, 200))
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("wrote %d bytes, want truncation to 100", n)
	}
	if _, err := f.WriteAt([]byte("x"), 150); vfs.ToErrno(err) != vfs.EFBIG {
		t.Fatalf("write past limit: %v, want EFBIG", err)
	}
	if err := f.Truncate(500); vfs.ToErrno(err) != vfs.EFBIG {
		t.Fatalf("truncate past limit: %v, want EFBIG", err)
	}
	f.Close()
}

func TestStickyBitRestrictsDeletion(t *testing.T) {
	fs := New(Options{})
	root := vfs.NewClient(fs, vfs.Root())
	if err := root.Mkdir("/tmp", 0o1777); err != nil {
		t.Fatal(err)
	}
	alice := vfs.NewClient(fs, vfs.User(1000, 1000))
	bob := vfs.NewClient(fs, vfs.User(2000, 2000))
	if err := alice.WriteFile("/tmp/alice.txt", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := bob.Remove("/tmp/alice.txt"); vfs.ToErrno(err) != vfs.EPERM {
		t.Fatalf("bob remove: %v, want EPERM", err)
	}
	if err := alice.Remove("/tmp/alice.txt"); err != nil {
		t.Fatalf("alice remove: %v", err)
	}
}

func TestTruncateExtendReadsZeros(t *testing.T) {
	c := newClient(t)
	c.WriteFile("/f", []byte("abc"), 0o644)
	if err := c.Truncate("/f", 10); err != nil {
		t.Fatal(err)
	}
	got, _ := c.ReadFile("/f")
	if len(got) != 10 || string(got[:3]) != "abc" {
		t.Fatalf("got %q", got)
	}
	for _, b := range got[3:] {
		if b != 0 {
			t.Fatal("extension must be zeros")
		}
	}
}

func TestTruncateShrinkDiscardsData(t *testing.T) {
	c := newClient(t)
	c.WriteFile("/f", bytes.Repeat([]byte("x"), 2*blockSize), 0o644)
	if err := c.Truncate("/f", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate("/f", 2*blockSize); err != nil {
		t.Fatal(err)
	}
	got, _ := c.ReadFile("/f")
	if string(got[:5]) != "xxxxx" {
		t.Fatal("prefix should survive")
	}
	for _, b := range got[5:] {
		if b != 0 {
			t.Fatal("shrink-then-grow must expose zeros, not stale data")
		}
	}
}

func TestXattrRoundTrip(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", nil, 0o644)
	r, _ := c.Resolve("/f")
	if err := fs.Setxattr(c.Op, r.Ino, "user.key", []byte("val"), 0); err != nil {
		t.Fatal(err)
	}
	v, err := fs.Getxattr(c.Op, r.Ino, "user.key")
	if err != nil || string(v) != "val" {
		t.Fatalf("getxattr: %q, %v", v, err)
	}
	names, err := fs.Listxattr(c.Op, r.Ino)
	if err != nil || len(names) != 1 || names[0] != "user.key" {
		t.Fatalf("listxattr: %v, %v", names, err)
	}
	if err := fs.Removexattr(c.Op, r.Ino, "user.key"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Getxattr(c.Op, r.Ino, "user.key"); vfs.ToErrno(err) != vfs.ENODATA {
		t.Fatalf("after remove: %v, want ENODATA", err)
	}
}

func TestXattrCreateReplaceFlags(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", nil, 0o644)
	r, _ := c.Resolve("/f")
	if err := fs.Setxattr(c.Op, r.Ino, "user.k", []byte("1"), vfs.XattrReplace); vfs.ToErrno(err) != vfs.ENODATA {
		t.Fatalf("replace-missing: %v", err)
	}
	if err := fs.Setxattr(c.Op, r.Ino, "user.k", []byte("1"), vfs.XattrCreate); err != nil {
		t.Fatal(err)
	}
	if err := fs.Setxattr(c.Op, r.Ino, "user.k", []byte("2"), vfs.XattrCreate); vfs.ToErrno(err) != vfs.EEXIST {
		t.Fatalf("create-existing: %v", err)
	}
}

func TestACLMaskUpdatesGroupBits(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", nil, 0o644)
	r, _ := c.Resolve("/f")
	acl := vfs.ACL{Entries: []vfs.ACLEntry{
		{Tag: vfs.ACLUserObj, Perm: 6},
		{Tag: vfs.ACLUser, Perm: 7, ID: 1000},
		{Tag: vfs.ACLGroupObj, Perm: 4},
		{Tag: vfs.ACLMask, Perm: 5},
		{Tag: vfs.ACLOther, Perm: 4},
	}}
	if err := fs.Setxattr(c.Op, r.Ino, vfs.XattrPosixACLAccess, vfs.EncodeACL(acl), 0); err != nil {
		t.Fatal(err)
	}
	attr, _ := c.Stat("/f")
	if attr.Mode>>3&7 != 5 {
		t.Fatalf("group bits = %o, want 5 (ACL mask)", attr.Mode>>3&7)
	}
}

func TestFallocatePreallocateAndPunch(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	f, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fs.Fallocate(c.Op, f.Handle(), 0, 0, 4*blockSize); err != nil {
		t.Fatal(err)
	}
	attr, _ := f.Stat()
	if attr.Size != 4*blockSize {
		t.Fatalf("size = %d", attr.Size)
	}
	if attr.Blocks != 4*blockSize/512 {
		t.Fatalf("blocks = %d", attr.Blocks)
	}
	// KEEP_SIZE must not grow the file.
	if err := fs.Fallocate(c.Op, f.Handle(), vfs.FallocKeepSize, 4*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	attr, _ = f.Stat()
	if attr.Size != 4*blockSize {
		t.Fatal("KEEP_SIZE grew the file")
	}
	// Punch a hole over block 1.
	if _, err := f.WriteAt(bytes.Repeat([]byte("y"), blockSize), blockSize); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fallocate(c.Op, f.Handle(), vfs.FallocPunchHole|vfs.FallocKeepSize, blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	f.ReadAt(buf, blockSize)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("punched range must read zeros")
		}
	}
	// PUNCH_HOLE without KEEP_SIZE is invalid.
	if err := fs.Fallocate(c.Op, f.Handle(), vfs.FallocPunchHole, 0, blockSize); vfs.ToErrno(err) != vfs.EINVAL {
		t.Fatalf("punch without keep-size: %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	fs := New(Options{Capacity: 2 * blockSize})
	c := vfs.NewClient(fs, vfs.Root())
	err := c.WriteFile("/f", make([]byte, 3*blockSize), 0o644)
	if vfs.ToErrno(err) != vfs.ENOSPC {
		// Partial write then ENOSPC is also acceptable at the client
		// level; the file must not exceed capacity.
		attr, _ := c.Stat("/f")
		if attr.Size > 2*blockSize {
			t.Fatalf("file exceeded capacity: %d", attr.Size)
		}
	}
	st, _ := fs.Statfs(c.Op, vfs.RootIno)
	if st.BlocksFree != 0 {
		t.Fatalf("free blocks = %d, want 0", st.BlocksFree)
	}
}

func TestCapacityFreedOnDelete(t *testing.T) {
	fs := New(Options{Capacity: 4 * blockSize})
	c := vfs.NewClient(fs, vfs.Root())
	if err := c.WriteFile("/a", make([]byte, 4*blockSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBytes() != 0 {
		t.Fatalf("used = %d after delete", fs.UsedBytes())
	}
	if err := c.WriteFile("/b", make([]byte, 4*blockSize), 0o644); err != nil {
		t.Fatalf("space should be reusable: %v", err)
	}
}

func TestStatfsCounts(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", make([]byte, blockSize), 0o644)
	st, err := fs.Statfs(c.Op, vfs.RootIno)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockSize != blockSize || st.Blocks == 0 {
		t.Fatalf("statfs = %+v", st)
	}
	if st.Blocks-st.BlocksFree != 1 {
		t.Fatalf("used blocks = %d, want 1", st.Blocks-st.BlocksFree)
	}
}

func TestHandleExport(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", []byte("x"), 0o644)
	r, _ := c.Resolve("/f")
	h, err := fs.NameToHandle(r.Ino)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.OpenByHandle(h)
	if err != nil || ino != r.Ino {
		t.Fatalf("OpenByHandle: %d, %v", ino, err)
	}
	if _, err := fs.OpenByHandle([]byte{1}); vfs.ToErrno(err) != vfs.EINVAL {
		t.Fatal("short handle must be EINVAL")
	}
	c.Remove("/f")
	if _, err := fs.OpenByHandle(h); vfs.ToErrno(err) != vfs.ESTALE {
		t.Fatalf("stale handle: %v, want ESTALE", err)
	}
}

func TestMknodRequiresPrivilege(t *testing.T) {
	fs := New(Options{})
	user := vfs.NewOp(nil, vfs.User(1000, 1000))
	if _, err := fs.Mknod(user, vfs.RootIno, "dev", vfs.TypeCharDev, 0o600, 0x0101); vfs.ToErrno(err) != vfs.EPERM {
		t.Fatalf("mknod chardev as user: %v, want EPERM", err)
	}
	// But root first needs write access to /.
	root := vfs.RootOp()
	if _, err := fs.Mknod(root, vfs.RootIno, "dev", vfs.TypeCharDev, 0o600, 0x0101); vfs.ToErrno(err) != vfs.OK {
		t.Fatal(err)
	}
	// FIFOs are unprivileged — but / is 0755 so give the user a dir.
	if _, err := fs.Mkdir(root, vfs.RootIno, "home", 0o777); err != nil {
		t.Fatal(err)
	}
	c := vfs.NewClientOp(fs, user)
	r, _ := c.Resolve("/home")
	if _, err := fs.Mknod(user, r.Ino, "pipe", vfs.TypeFIFO, 0o644, 0); err != nil {
		t.Fatalf("mknod fifo: %v", err)
	}
}

func TestTimesUpdate(t *testing.T) {
	fs := New(Options{})
	c := vfs.NewClient(fs, vfs.Root())
	c.WriteFile("/f", []byte("1"), 0o644)
	a1, _ := c.Stat("/f")
	// Writing bumps mtime/ctime.
	f, _ := c.Open("/f", vfs.OWronly, 0)
	f.Write([]byte("2"))
	f.Close()
	a2, _ := c.Stat("/f")
	if !a2.Mtime.After(a1.Mtime) {
		t.Fatal("mtime must advance on write")
	}
	if !a2.Ctime.After(a1.Ctime) {
		t.Fatal("ctime must advance on write")
	}
	// Reading bumps atime.
	c.ReadFile("/f")
	a3, _ := c.Stat("/f")
	if !a3.Atime.After(a2.Atime) {
		t.Fatal("atime must advance on read")
	}
}

func TestStatsInterceptorCounts(t *testing.T) {
	fs := New(Options{})
	stats := vfs.NewStats()
	c := vfs.NewClient(vfs.Chain(fs, stats), vfs.Root())
	c.WriteFile("/f", []byte("abc"), 0o644)
	c.ReadFile("/f")
	st := stats.Snapshot()
	if st.Creates == 0 || st.Writes == 0 || st.Reads == 0 || st.BytesWrit != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Releases == 0 {
		t.Fatalf("releases uncounted: %+v", st)
	}
}

func TestSeekAndSequentialIO(t *testing.T) {
	c := newClient(t)
	f, err := c.Open("/s", vfs.ORdwr|vfs.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello world"))
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("seek read %q", buf)
	}
	if _, err := f.Seek(-5, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	io.ReadFull(f, buf)
	if string(buf) != "world" {
		t.Fatalf("seek-end read %q", buf)
	}
	f.Close()
	if err := f.Close(); vfs.ToErrno(err) != vfs.EBADF {
		t.Fatal("double close must fail")
	}
}

func TestWalkTreeVisitsAll(t *testing.T) {
	c := newClient(t)
	c.MkdirAll("/a/b", 0o755)
	c.WriteFile("/a/f1", nil, 0o644)
	c.WriteFile("/a/b/f2", nil, 0o644)
	var visited []string
	err := c.WalkTree("/a", func(p string, attr vfs.Attr) error {
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 4 {
		t.Fatalf("visited %v", visited)
	}
}

// Property: write at arbitrary offsets then read back yields exactly the
// written bytes, with holes reading as zeros.
func TestPropertyWriteReadConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		fs := New(Options{})
		c := vfs.NewClient(fs, vfs.Root())
		file, err := c.Create("/p", 0o644)
		if err != nil {
			return false
		}
		defer file.Close()
		// Mirror writes into a reference buffer.
		ref := make([]byte, 0)
		rng := seed
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if rng == 0 {
				rng = 1
			}
			return rng
		}
		for i := 0; i < 20; i++ {
			off := int64(next() % 50000)
			size := int(next()%5000) + 1
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(next())
			}
			if _, err := file.WriteAt(data, off); err != nil {
				return false
			}
			if int(off)+size > len(ref) {
				grown := make([]byte, int(off)+size)
				copy(grown, ref)
				ref = grown
			}
			copy(ref[off:], data)
		}
		got, err := c.ReadFile("/p")
		if err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: nlink accounting stays consistent across link/unlink storms.
func TestPropertyNlinkConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		fs := New(Options{})
		c := vfs.NewClient(fs, vfs.Root())
		if err := c.WriteFile("/base", nil, 0o644); err != nil {
			return false
		}
		links := map[string]bool{"base": true}
		anyLink := func() string {
			for name := range links {
				return name
			}
			return ""
		}
		n := 0
		for _, op := range ops {
			if op%2 == 0 {
				name := string(rune('a' + n%26))
				if links[name] {
					continue
				}
				if err := c.Link("/"+anyLink(), "/"+name); err != nil {
					return false
				}
				links[name] = true
				n++
			} else if len(links) > 1 {
				name := anyLink()
				if err := c.Remove("/" + name); err != nil {
					return false
				}
				delete(links, name)
			}
		}
		var anyName string
		for name := range links {
			anyName = name
			break
		}
		attr, err := c.Stat("/" + anyName)
		if err != nil {
			return false
		}
		return int(attr.Nlink) == len(links)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
