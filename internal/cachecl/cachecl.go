// Package cachecl is the mount-side client of the shared cache tier
// (internal/cachesvc). It is the only path a mount uses to talk to the
// service, and it is where the "network" lives: every RPC charges the
// calling mount's sim.Clock with the cost model's NetRTT plus the
// payload at NetPerKB, so cross-mount cache behaviour is benchmarkable
// in the same virtual currency as disks and FUSE round trips — and
// deterministic, because nothing real crosses a socket.
//
// A client holds one epoch lease per service shard group. Mutations
// (chunk publishes, attr/dentry writes, invalidations) carry the
// lease's epoch; when the service fences one — the lease expired while
// this mount was partitioned, or a newer epoch superseded it — the
// client drops the write, marks the group lost, and counts it. Nothing
// is queued or replayed: the holder must Reattach for fresh epochs,
// after which new writes flow again. That drop-don't-retry rule is what
// keeps a stale mount from ever pushing stale bytes into the tier.
package cachecl

import (
	"errors"
	"sync"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/cachesvc"
	"cntr/internal/sim"
)

// ErrPartitioned fails mutations attempted while the client is
// simulating a network partition.
var ErrPartitioned = errors.New("cachecl: mount is partitioned from the cache tier")

// Stats counts this mount's cache-tier traffic.
type Stats struct {
	// Hits and Misses count lookups (chunk, attr and dentry alike).
	Hits, Misses int64
	// Puts counts accepted publishes; Invalidations accepted drops.
	Puts, Invalidations int64
	// Fenced counts mutations the service rejected on epoch grounds;
	// each also marks its shard group lost until Reattach.
	Fenced int64
	// Unreachable counts operations attempted while partitioned.
	Unreachable int64
	// NetBytes is the payload volume charged to this mount's clock.
	NetBytes int64
	// Moves counts placement refreshes forced by ErrMoved — the
	// service's topology changed under this client's cached routing
	// table and an operation had to re-route.
	Moves int64
}

// Client attaches one mount to a cache service.
type Client struct {
	svc   *cachesvc.Service
	mount string
	clock *sim.Clock
	model *sim.CostModel

	mu          sync.Mutex
	leases      map[int]cachesvc.Lease
	lost        map[int]bool // groups fenced since the last attach
	partitioned bool
	stats       Stats
	// place is the cached routing table: which nodes own each shard, at
	// which placement version. Node-addressed calls echo the version;
	// the service answers ErrMoved when it is stale and the client
	// refreshes (one RTT) and retries.
	place cachesvc.PlacementInfo
}

// New builds a client for the given mount identity. Call Attach to
// acquire leases before mutating.
func New(svc *cachesvc.Service, mount string, clock *sim.Clock, model *sim.CostModel) *Client {
	return &Client{
		svc: svc, mount: mount, clock: clock, model: model,
		leases: make(map[int]cachesvc.Lease),
		lost:   make(map[int]bool),
	}
}

// Mount returns the client's mount identity.
func (c *Client) Mount() string { return c.mount }

// Attach acquires a fresh lease for every shard group — the initial
// connect and the reconnect after a fence are the same operation, and
// both mint new epochs. One RTT is charged for the batch.
func (c *Client) Attach() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned {
		c.stats.Unreachable++
		return ErrPartitioned
	}
	c.clock.Advance(c.model.NetRTT)
	for g := 0; g < c.svc.NumGroups(); g++ {
		l, err := c.svc.Acquire(c.mount, g)
		if err != nil {
			return err
		}
		c.leases[g] = l
		delete(c.lost, g)
	}
	// The routing table rides along on the attach round trip.
	c.place = c.svc.Placement()
	return nil
}

// Reattach is Attach under its recovery name: a mount that was fenced
// calls it to come back with fresh epochs. Nothing dropped while fenced
// is replayed.
func (c *Client) Reattach() error { return c.Attach() }

// RenewAll extends every held lease. Expired or superseded leases are
// dropped and their groups marked lost (ErrExpired/ErrNotHeld from the
// service); the first such error is returned so callers notice.
func (c *Client) RenewAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned {
		c.stats.Unreachable++
		return ErrPartitioned
	}
	c.clock.Advance(c.model.NetRTT)
	var firstErr error
	for g, l := range c.leases {
		renewed, err := c.svc.Renew(l)
		if err != nil {
			delete(c.leases, g)
			c.lost[g] = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.leases[g] = renewed
	}
	return firstErr
}

// Release drops every held lease (session teardown). Leases already
// expired or superseded are skipped silently — they are no longer ours
// to release.
func (c *Client) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.partitioned {
		c.clock.Advance(c.model.NetRTT)
		for _, l := range c.leases {
			c.svc.Release(l)
		}
	}
	c.leases = make(map[int]cachesvc.Lease)
}

// Lease returns the held lease for a shard group.
func (c *Client) Lease(group int) (cachesvc.Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[group]
	return l, ok
}

// SetPartitioned toggles a simulated network partition: while set,
// lookups miss, mutations fail with ErrPartitioned, and nothing is
// charged — the packets never leave the host.
func (c *Client) SetPartitioned(p bool) {
	c.mu.Lock()
	c.partitioned = p
	c.mu.Unlock()
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// routeLocked picks the node a lookup of shard sh goes to: the
// cheapest live owner by the cached routing table (distance, then
// placement order, so the primary under a uniform cost model). The
// second result is the node's distance multiplier. Returns -1 when the
// cached table lists no live owner (forcing a refresh).
func (c *Client) routeLocked(sh int) (int, float64) {
	if sh >= len(c.place.Owners) {
		return -1, 1
	}
	best, bestDist := -1, 0.0
	for _, id := range c.place.Owners[sh] {
		if id >= len(c.place.Live) || !c.place.Live[id] {
			continue
		}
		if d := c.place.Distance[id]; best == -1 || d < bestDist {
			best, bestDist = id, d
		}
	}
	return best, bestDist
}

// refreshPlacementLocked re-fetches the routing table after an
// ErrMoved, charging the extra round trip the re-route cost.
func (c *Client) refreshPlacementLocked() {
	c.place = c.svc.Placement()
	c.stats.Moves++
	c.clock.Advance(c.model.NetRTT)
}

// scale stretches a network cost by a node's distance multiplier
// (1.0 = one intra-cluster hop, the single-node behaviour).
func scale(d float64, cost time.Duration) time.Duration {
	if d == 1 {
		return cost
	}
	return time.Duration(float64(cost) * d)
}

// get is the shared lookup path: one RTT for the probe, payload bytes
// only on a hit, both scaled by the routed node's distance. A lookup
// served by handoff fallthrough charges its extra cross-node hops; a
// stale routing table costs one refresh RTT and a retry.
func (c *Client) get(key cachesvc.Key) ([]byte, bool) {
	c.mu.Lock()
	if c.partitioned {
		c.stats.Unreachable++
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()
	sh := c.svc.ShardOf(key)
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		target, dist := c.routeLocked(sh)
		ver := c.place.Version
		if target == -1 {
			c.refreshPlacementLocked()
			target, dist = c.routeLocked(sh)
			ver = c.place.Version
		}
		c.mu.Unlock()
		if target == -1 {
			break // no live owner at all: count the probe as a miss
		}
		val, ok, hops, err := c.svc.NodeGet(target, ver, key)
		if err != nil {
			if attempt < 3 {
				c.mu.Lock()
				c.refreshPlacementLocked()
				c.mu.Unlock()
				continue
			}
			break
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if ok {
			c.stats.Hits++
			c.stats.NetBytes += int64(len(val))
			c.clock.Advance(scale(dist, c.model.NetCost(len(val))))
			if hops > 0 {
				// The fallthrough transfer between service nodes is on the
				// lookup's critical path.
				c.clock.Advance(time.Duration(hops) * c.model.NetCost(len(val)))
			}
			return val, true
		}
		c.stats.Misses++
		c.clock.Advance(scale(dist, c.model.NetRTT))
		if hops > 0 {
			c.clock.Advance(time.Duration(hops) * c.model.NetRTT)
		}
		return nil, false
	}
	c.mu.Lock()
	c.stats.Misses++
	c.clock.Advance(c.model.NetRTT)
	c.mu.Unlock()
	return nil, false
}

// put is the shared mutation path: the write goes to the key's primary
// and fans out to the replicas under the group lease. charged=false
// models a write-behind publish that does not block the caller
// (read-populate after an origin fetch); the fencing decision is
// identical either way. A charged write pays one send to the primary
// up front — fenced or not, the bytes travelled — plus the replication
// fan-out once the copies are confirmed.
func (c *Client) put(key cachesvc.Key, val []byte, charged bool) error {
	c.mu.Lock()
	if c.partitioned {
		c.stats.Unreachable++
		c.mu.Unlock()
		return ErrPartitioned
	}
	group := c.svc.GroupOf(key)
	l, ok := c.leases[group]
	if !ok {
		// No lease (never attached, or lost and not reattached): the
		// publish is dropped locally — it would only be fenced anyway.
		c.stats.Fenced++
		c.lost[group] = true
		c.mu.Unlock()
		return cachesvc.ErrFenced
	}
	if charged {
		c.stats.NetBytes += int64(len(val))
		c.clock.Advance(c.model.NetCost(len(val)))
	}
	c.mu.Unlock()
	sh := c.svc.ShardOf(key)
	var copies int
	var err error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		var primary int
		if sh < len(c.place.Owners) && len(c.place.Owners[sh]) > 0 {
			primary = c.place.Owners[sh][0]
		} else {
			c.refreshPlacementLocked()
			if sh < len(c.place.Owners) && len(c.place.Owners[sh]) > 0 {
				primary = c.place.Owners[sh][0]
			}
		}
		ver := c.place.Version
		c.mu.Unlock()
		copies, err = c.svc.NodePut(primary, ver, l, key, val)
		if errors.Is(err, cachesvc.ErrMoved) && attempt < 3 {
			c.mu.Lock()
			c.refreshPlacementLocked()
			c.mu.Unlock()
			continue
		}
		break
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(err, cachesvc.ErrFenced) {
		c.stats.Fenced++
		c.lost[group] = true
		delete(c.leases, group)
		return err
	}
	if err == nil {
		c.stats.Puts++
		if charged && copies > 1 {
			// Primary-then-replicas: the extra copies are on the write's
			// critical path.
			c.clock.Advance(time.Duration(copies-1) * c.model.NetCost(len(val)))
		}
	}
	return err
}

// invalidate drops key under the group's lease, with put's fencing
// behaviour.
func (c *Client) invalidate(key cachesvc.Key) error {
	c.mu.Lock()
	if c.partitioned {
		c.stats.Unreachable++
		c.mu.Unlock()
		return ErrPartitioned
	}
	group := c.svc.GroupOf(key)
	l, ok := c.leases[group]
	if !ok {
		c.stats.Fenced++
		c.lost[group] = true
		c.mu.Unlock()
		return cachesvc.ErrFenced
	}
	c.clock.Advance(c.model.NetRTT)
	c.mu.Unlock()
	err := c.svc.Invalidate(l, key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(err, cachesvc.ErrFenced) {
		c.stats.Fenced++
		c.lost[group] = true
		delete(c.leases, group)
		return err
	}
	if err == nil {
		c.stats.Invalidations++
	}
	return err
}

// GetChunk fetches a backend-store chunk from the tier. The returned
// slice is owned by the service and must not be modified.
func (c *Client) GetChunk(ref blobstore.Ref) ([]byte, bool) {
	return c.get(cachesvc.ChunkKey(ref))
}

// PutChunk publishes a chunk synchronously (charged write-through).
func (c *Client) PutChunk(ref blobstore.Ref, data []byte) error {
	return c.put(cachesvc.ChunkKey(ref), data, true)
}

// PublishChunk publishes a chunk write-behind: the epoch fence still
// applies, but the caller's clock is not charged — the transfer
// overlaps whatever the mount does next.
func (c *Client) PublishChunk(ref blobstore.Ref, data []byte) error {
	return c.put(cachesvc.ChunkKey(ref), data, false)
}

// InvalidateChunk drops a chunk from the tier (last backend reference
// gone).
func (c *Client) InvalidateChunk(ref blobstore.Ref) error {
	return c.invalidate(cachesvc.ChunkKey(ref))
}

// GetAttr fetches a path's encoded attributes.
func (c *Client) GetAttr(path string) ([]byte, bool) {
	return c.get(cachesvc.AttrKey(path))
}

// PutAttr publishes a path's encoded attributes.
func (c *Client) PutAttr(path string, val []byte) error {
	return c.put(cachesvc.AttrKey(path), val, true)
}

// InvalidateAttr drops a path's attributes (the path was mutated).
func (c *Client) InvalidateAttr(path string) error {
	return c.invalidate(cachesvc.AttrKey(path))
}

// GetDentry fetches a directory's encoded entry list.
func (c *Client) GetDentry(dir string) ([]byte, bool) {
	return c.get(cachesvc.DentryKey(dir))
}

// PutDentry publishes a directory's encoded entry list.
func (c *Client) PutDentry(dir string, val []byte) error {
	return c.put(cachesvc.DentryKey(dir), val, true)
}

// InvalidateDentry drops a directory's entry list.
func (c *Client) InvalidateDentry(dir string) error {
	return c.invalidate(cachesvc.DentryKey(dir))
}
