package cachecl

import (
	"errors"
	"testing"
	"time"

	"cntr/internal/blobstore"
	"cntr/internal/cachesvc"
	"cntr/internal/sim"
)

type env struct {
	svc      *cachesvc.Service
	svcClock *sim.Clock
	clock    *sim.Clock
	model    *sim.CostModel
	cl       *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	svcClock := sim.NewClock()
	svc := cachesvc.New(cachesvc.Options{
		Shards: 8, Groups: 2, LeaseTTL: time.Second, Clock: svcClock,
	})
	clock := sim.NewClock()
	model := sim.DefaultCostModel()
	cl := New(svc, "m1", clock, model)
	if err := cl.Attach(); err != nil {
		t.Fatal(err)
	}
	return &env{svc: svc, svcClock: svcClock, clock: clock, model: model, cl: cl}
}

// TestNetworkCharging: a hit costs RTT plus payload, a miss RTT only,
// all on the mount's clock.
func TestNetworkCharging(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 4096)
	if err := e.cl.PutChunk("ref1", data); err != nil {
		t.Fatal(err)
	}

	before := e.clock.Now()
	if _, ok := e.cl.GetChunk("ref1"); !ok {
		t.Fatal("published chunk missed")
	}
	hitCost := e.clock.Now() - before
	if want := e.model.NetCost(4096); hitCost != want {
		t.Fatalf("hit cost = %v, want %v", hitCost, want)
	}

	before = e.clock.Now()
	if _, ok := e.cl.GetChunk("absent"); ok {
		t.Fatal("absent chunk hit")
	}
	missCost := e.clock.Now() - before
	if missCost != e.model.NetRTT {
		t.Fatalf("miss cost = %v, want %v", missCost, e.model.NetRTT)
	}

	st := e.cl.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.NetBytes != 8192 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPublishChunkUncharged: the write-behind publish advances no
// virtual time but still lands (and still carries the epoch).
func TestPublishChunkUncharged(t *testing.T) {
	e := newEnv(t)
	before := e.clock.Now()
	if err := e.cl.PublishChunk("wb", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if d := e.clock.Now() - before; d != 0 {
		t.Fatalf("write-behind publish charged %v", d)
	}
	if !e.svc.Contains(cachesvc.ChunkKey("wb")) {
		t.Fatal("write-behind publish did not land")
	}
}

// TestFencedPublishDroppedNotReplayed: once the service fences a group,
// the client drops the write, loses the lease, and keeps failing until
// Reattach — after which the dropped write is NOT replayed.
func TestFencedPublishDroppedNotReplayed(t *testing.T) {
	e := newEnv(t)
	e.svcClock.Advance(2 * time.Second) // expire every lease service-side

	if err := e.cl.PutChunk("stale", []byte("stale")); !errors.Is(err, cachesvc.ErrFenced) {
		t.Fatalf("expired-lease publish = %v, want ErrFenced", err)
	}
	// Second attempt fails locally (lease gone), still fenced.
	if err := e.cl.PutChunk("stale", []byte("stale")); !errors.Is(err, cachesvc.ErrFenced) {
		t.Fatalf("post-fence publish = %v, want ErrFenced", err)
	}
	if st := e.cl.Stats(); st.Fenced != 2 {
		t.Fatalf("Fenced = %d, want 2", st.Fenced)
	}
	if err := e.cl.Reattach(); err != nil {
		t.Fatal(err)
	}
	if e.svc.Contains(cachesvc.ChunkKey("stale")) {
		t.Fatal("fenced write reappeared after reattach")
	}
	if err := e.cl.PutChunk("fresh", []byte("fresh")); err != nil {
		t.Fatalf("post-reattach publish: %v", err)
	}
}

// TestPartition: a partitioned client misses locally, fails mutations,
// and charges nothing; healing restores traffic.
func TestPartition(t *testing.T) {
	e := newEnv(t)
	if err := e.cl.PutChunk("r", []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.cl.SetPartitioned(true)
	before := e.clock.Now()
	if _, ok := e.cl.GetChunk("r"); ok {
		t.Fatal("partitioned client reached the service")
	}
	if err := e.cl.PutChunk("r2", []byte("y")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned put = %v", err)
	}
	if err := e.cl.Attach(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned attach = %v", err)
	}
	if d := e.clock.Now() - before; d != 0 {
		t.Fatalf("partitioned ops charged %v", d)
	}
	e.cl.SetPartitioned(false)
	if _, ok := e.cl.GetChunk("r"); !ok {
		t.Fatal("healed client cannot read")
	}
	if st := e.cl.Stats(); st.Unreachable != 3 {
		t.Fatalf("Unreachable = %d, want 3", st.Unreachable)
	}
}

// TestAttrDentryRoundTrip: the path-keyed entry types flow through the
// same charged, fenced path as chunks.
func TestAttrDentryRoundTrip(t *testing.T) {
	e := newEnv(t)
	if err := e.cl.PutAttr("/a/b", []byte("attr-bytes")); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.cl.GetAttr("/a/b"); !ok || string(v) != "attr-bytes" {
		t.Fatalf("GetAttr = %q, %v", v, ok)
	}
	if err := e.cl.PutDentry("/a", []byte("b,c,d")); err != nil {
		t.Fatal(err)
	}
	if err := e.cl.InvalidateAttr("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.cl.GetAttr("/a/b"); ok {
		t.Fatal("attr survived invalidation")
	}
	if v, ok := e.cl.GetDentry("/a"); !ok || string(v) != "b,c,d" {
		t.Fatalf("GetDentry = %q, %v", v, ok)
	}
}

// TestRenewKeepsLeaseAlive: periodic renewal holds the same epoch past
// the original deadline.
func TestRenewKeepsLeaseAlive(t *testing.T) {
	e := newEnv(t)
	orig, _ := e.cl.Lease(0)
	e.svcClock.Advance(700 * time.Millisecond)
	if err := e.cl.RenewAll(); err != nil {
		t.Fatal(err)
	}
	e.svcClock.Advance(700 * time.Millisecond) // past the original TTL
	if err := e.cl.PutChunk("alive", []byte("x")); err != nil {
		t.Fatalf("publish under renewed lease: %v", err)
	}
	now, _ := e.cl.Lease(0)
	if now.Epoch != orig.Epoch {
		t.Fatalf("renewal changed epoch %d → %d", orig.Epoch, now.Epoch)
	}
}

// storeEnv builds a CAS-backed wrapped store with an origin disk.
func storeEnv(t *testing.T) (*env, *Store, *blobstore.CAS, *sim.Disk) {
	t.Helper()
	e := newEnv(t)
	cas := blobstore.NewCAS(blobstore.CASOptions{})
	origin := sim.NewDisk(e.clock, e.model)
	st := WrapStore(cas, e.cl, StoreOptions{Origin: origin})
	return e, st, cas, origin
}

// TestStoreReadPopulate: the first Get pays the origin and populates
// the tier; a sibling mount's Get is served by the tier alone.
func TestStoreReadPopulate(t *testing.T) {
	e, st, cas, origin := storeEnv(t)
	data := make([]byte, 4096)
	ref, err := cas.Put(data) // seeded directly: tier must not know it yet
	if err != nil {
		t.Fatal(err)
	}
	if e.svc.Contains(cachesvc.ChunkKey(ref)) {
		t.Fatal("tier knew the chunk before any read")
	}
	if _, err := st.Get(ref); err != nil {
		t.Fatal(err)
	}
	if origin.Stats().Reads != 1 {
		t.Fatalf("origin reads = %d, want 1", origin.Stats().Reads)
	}
	if !e.svc.Contains(cachesvc.ChunkKey(ref)) {
		t.Fatal("read did not populate the tier")
	}

	// A sibling mount (own clock, own client) reads the same ref: tier
	// hit, no origin I/O, and cheaper than the origin fetch.
	clock2 := sim.NewClock()
	cl2 := New(e.svc, "m2", clock2, e.model)
	if err := cl2.Attach(); err != nil {
		t.Fatal(err)
	}
	origin2 := sim.NewDisk(clock2, e.model)
	st2 := WrapStore(cas, cl2, StoreOptions{Origin: origin2})
	before := clock2.Now()
	got, err := st2.Get(ref)
	if err != nil || len(got) != 4096 {
		t.Fatalf("sibling Get = %d bytes, %v", len(got), err)
	}
	if origin2.Stats().Reads != 0 {
		t.Fatal("sibling read went to the origin despite tier hit")
	}
	hitCost := clock2.Now() - before
	if originCost := e.model.DiskCost(4096); hitCost >= originCost {
		t.Fatalf("tier hit (%v) not cheaper than origin fetch (%v)", hitCost, originCost)
	}
}

// TestStorePutWriteThrough: Put lands in the backend and the tier; a
// fenced mount's Put still lands in the backend but not the tier.
func TestStorePutWriteThrough(t *testing.T) {
	e, st, cas, _ := storeEnv(t)
	ref, err := st.Put([]byte("shared-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cas.Get(ref); err != nil {
		t.Fatalf("backend missing written chunk: %v", err)
	}
	if !e.svc.Contains(cachesvc.ChunkKey(ref)) {
		t.Fatal("write-through publish missing from tier")
	}

	e.svcClock.Advance(2 * time.Second) // fence the mount
	ref2, err := st.Put([]byte("stale-bytes"))
	if err != nil {
		t.Fatalf("fenced mount's local write must still succeed: %v", err)
	}
	if _, err := cas.Get(ref2); err != nil {
		t.Fatalf("backend durability lost under fence: %v", err)
	}
	if e.svc.Contains(cachesvc.ChunkKey(ref2)) {
		t.Fatal("fenced publish landed in tier")
	}
}

// TestStoreDeleteInvalidates: only the last backend reference drops the
// tier entry.
func TestStoreDeleteInvalidates(t *testing.T) {
	e, st, _, _ := storeEnv(t)
	data := []byte("refcounted")
	ref, err := st.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(data); err != nil { // second reference
		t.Fatal(err)
	}
	if err := st.Delete(ref); err != nil {
		t.Fatal(err)
	}
	if !e.svc.Contains(cachesvc.ChunkKey(ref)) {
		t.Fatal("tier entry dropped while backend references remain")
	}
	if err := st.Delete(ref); err != nil {
		t.Fatal(err)
	}
	if e.svc.Contains(cachesvc.ChunkKey(ref)) {
		t.Fatal("tier entry survived last backend delete")
	}
}
