package cachecl

import (
	"cntr/internal/blobstore"
	"cntr/internal/sim"
)

// StoreOptions configures the store wrapper.
type StoreOptions struct {
	// Origin, when set, charges backend fallthrough traffic to the
	// mount's clock through a disk model: with a shared tier in front,
	// the backend store *is* the origin volume, and every Get the tier
	// cannot serve pays an origin I/O. Give the disk a queue depth
	// matching the readahead window (in chunks) so per-chunk seeks
	// amortize the way pipelined chunk fetches do.
	Origin *sim.Disk
	// NoPublishOnPut disables the write-through publish of locally
	// written chunks (they then only enter the tier via read-populate).
	NoPublishOnPut bool
}

// Store wraps a backend blobstore.Store with the shared cache tier:
// this is the layer that sits between a mount's filesystem
// (memfs blocks, pagecache misses) and the backend store. Get consults
// the tier first — a hit costs one intra-cluster RPC instead of an
// origin I/O — and read-populates it on a miss; Put writes through to
// the backend and publishes the chunk so sibling mounts' cold reads hit.
// Every publish carries the client's epoch lease, so a mount whose
// lease expired mid-writeback cannot land stale bytes in the tier (the
// local backend write still succeeds: fencing protects the shared
// cache, not the mount's own durability).
type Store struct {
	backend blobstore.Store
	cl      *Client
	opts    StoreOptions
}

// WrapStore builds the cache-tier store layer over backend.
func WrapStore(backend blobstore.Store, cl *Client, opts StoreOptions) *Store {
	return &Store{backend: backend, cl: cl, opts: opts}
}

// Backend returns the wrapped store.
func (s *Store) Backend() blobstore.Store { return s.backend }

// Client returns the tier client the wrapper publishes through.
func (s *Store) Client() *Client { return s.cl }

// Put implements blobstore.Store: the backend write is the durable
// one; the tier publish is write-through but best-effort — a fenced
// publish is dropped (counted by the client), never retried, and never
// fails the write.
func (s *Store) Put(data []byte) (blobstore.Ref, error) {
	ref, err := s.backend.Put(data)
	if err != nil {
		return ref, err
	}
	if s.opts.Origin != nil {
		s.opts.Origin.Write(len(data))
	}
	if !s.opts.NoPublishOnPut {
		s.cl.PutChunk(ref, data)
	}
	return ref, nil
}

// Get implements blobstore.Store: tier first, origin on a miss, then a
// write-behind publish so the next mount's read hits. The publish is
// epoch-fenced like any mutation.
func (s *Store) Get(ref blobstore.Ref) ([]byte, error) {
	if data, ok := s.cl.GetChunk(ref); ok {
		return data, nil
	}
	data, err := s.backend.Get(ref)
	if err != nil {
		return nil, err
	}
	if s.opts.Origin != nil {
		s.opts.Origin.Read(len(data))
	}
	s.cl.PublishChunk(ref, data)
	return data, nil
}

// Stat implements blobstore.Store (backend metadata, not charged as
// tier traffic).
func (s *Store) Stat(ref blobstore.Ref) (blobstore.Info, error) {
	return s.backend.Stat(ref)
}

// Delete implements blobstore.Store: the backend reference is dropped,
// and when the last one goes away the chunk is invalidated in the tier
// too — other mounts may still hold their own backend references, in
// which case the cached copy stays valid and stays put.
func (s *Store) Delete(ref blobstore.Ref) error {
	if err := s.backend.Delete(ref); err != nil {
		return err
	}
	if _, err := s.backend.Stat(ref); err != nil {
		s.cl.InvalidateChunk(ref)
	}
	return nil
}

// Stats implements blobstore.Store, delegating to the backend (tier
// traffic is on Client.Stats).
func (s *Store) Stats() blobstore.Stats { return s.backend.Stats() }

// ChunkSize implements blobstore.Chunker when the backend does, so
// chunk-streaming helpers split identically with or without the tier.
func (s *Store) ChunkSize() int {
	if c, ok := s.backend.(blobstore.Chunker); ok {
		return c.ChunkSize()
	}
	return 4096
}
