package cntrfs

import (
	"bytes"
	"testing"

	"cntr/internal/memfs"
	"cntr/internal/vfs"
)

func newFS(t *testing.T) (*FS, *vfs.Client, *vfs.Client) {
	t.Helper()
	host := memfs.New(memfs.Options{})
	hostCli := vfs.NewClient(host, vfs.Root())
	cfs := New(host, Options{DedupHardlinks: true})
	return cfs, vfs.NewClient(cfs, vfs.Root()), hostCli
}

func TestPassthroughReadWrite(t *testing.T) {
	_, cli, hostCli := newFS(t)
	if err := hostCli.WriteFile("/host.txt", []byte("from host"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadFile("/host.txt")
	if err != nil || string(got) != "from host" {
		t.Fatalf("through cntrfs: %q %v", got, err)
	}
	if err := cli.WriteFile("/fromcntr", []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = hostCli.ReadFile("/fromcntr")
	if err != nil || string(got) != "hi" {
		t.Fatalf("on host: %q %v", got, err)
	}
}

func TestInodeNumbersAreVirtual(t *testing.T) {
	_, cli, hostCli := newFS(t)
	hostCli.MkdirAll("/a/b", 0o755)
	hostCli.WriteFile("/a/b/f", nil, 0o644)
	hostAttr, _ := hostCli.Stat("/a/b/f")
	cntrAttr, err := cli.Stat("/a/b/f")
	if err != nil {
		t.Fatal(err)
	}
	if cntrAttr.Ino == hostAttr.Ino {
		t.Skip("inos may coincide; ensure mapping exists at least")
	}
}

func TestHardlinkDedup(t *testing.T) {
	_, cli, hostCli := newFS(t)
	hostCli.WriteFile("/orig", []byte("x"), 0o644)
	hostCli.Link("/orig", "/alias")
	a, err := cli.Stat("/orig")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cli.Stat("/alias")
	if err != nil {
		t.Fatal(err)
	}
	if a.Ino != b.Ino {
		t.Fatalf("hard links must share a CntrFS inode: %d vs %d", a.Ino, b.Ino)
	}
}

func TestNoDedupAblationBreaksLinkIdentity(t *testing.T) {
	host := memfs.New(memfs.Options{})
	hostCli := vfs.NewClient(host, vfs.Root())
	cfs := New(host, Options{DedupHardlinks: false})
	cli := vfs.NewClient(cfs, vfs.Root())
	hostCli.WriteFile("/orig", nil, 0o644)
	hostCli.Link("/orig", "/alias")
	a, _ := cli.Stat("/orig")
	b, _ := cli.Stat("/alias")
	if a.Ino == b.Ino {
		t.Fatal("without dedup the two paths should get distinct inodes")
	}
}

func TestForgetEvictsInodeTable(t *testing.T) {
	cfs, cli, hostCli := newFS(t)
	for i := 0; i < 100; i++ {
		hostCli.WriteFile("/f"+string(rune('a'+i%26))+string(rune('0'+i/26)), nil, 0o644)
	}
	ents, err := cli.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, err := cli.Stat("/" + e.Name); err != nil {
			t.Fatal(err)
		}
	}
	grown := cfs.NodeCount()
	if grown < 100 {
		t.Fatalf("node count = %d, want >= 100", grown)
	}
	// Forget everything the lookups registered.
	for _, e := range ents {
		r, err := cli.Lresolve("/" + e.Name)
		if err != nil {
			t.Fatal(err)
		}
		cfs.Forget(cli.Op, r.Ino, 2) // one from stat, one from this resolve
	}
	if got := cfs.NodeCount(); got != 1 {
		t.Fatalf("node count after forgets = %d, want 1 (root)", got)
	}
}

func TestStaleInodeAfterForget(t *testing.T) {
	cfs, cli, hostCli := newFS(t)
	hostCli.WriteFile("/f", nil, 0o644)
	r, err := cli.Resolve("/f")
	if err != nil {
		t.Fatal(err)
	}
	cfs.Forget(cli.Op, r.Ino, 1)
	if _, err := cfs.Getattr(cli.Op, r.Ino); vfs.ToErrno(err) != vfs.ESTALE {
		t.Fatalf("forgotten inode: %v, want ESTALE", err)
	}
}

func TestRootNeverForgotten(t *testing.T) {
	cfs, cli, _ := newFS(t)
	cfs.Forget(cli.Op, vfs.RootIno, 100)
	if _, err := cli.Stat("/"); err != nil {
		t.Fatalf("root must survive forgets: %v", err)
	}
}

func TestNotExportable(t *testing.T) {
	cfs, _, _ := newFS(t)
	// CntrFS must NOT implement vfs.HandleExporter: its inodes are
	// dynamic (xfstests #426).
	var fsAny interface{} = cfs
	if _, ok := fsAny.(vfs.HandleExporter); ok {
		t.Fatal("CntrFS inodes must not be exportable")
	}
}

func TestChmodDelegationKeepsSgid(t *testing.T) {
	// The server-side credential has CAP_FSETID (setfsuid semantics), so
	// a chmod replayed for an unprivileged caller keeps the SGID bit
	// where a native filesystem would clear it — xfstests #375.
	_, _, hostCli := newFS(t)
	cfs, _, _ := newFS(t)
	_ = hostCli
	host := cfs.Backing()
	rootCli := vfs.NewClient(host, vfs.Root())
	rootCli.WriteFile("/f", nil, 0o644)
	rootCli.Chown("/f", 1000, 5000) // caller 1000 not in group 5000

	// Simulate the FUSE server path: fsuid/fsgid switched, caps kept.
	serverCred := vfs.Root()
	serverCred.FSUID = 1000
	serverCred.FSGID = 1000
	cntrCli := vfs.NewClient(cfs, serverCred)
	if err := cntrCli.Chmod("/f", 0o2755); err != nil {
		t.Fatal(err)
	}
	attr, _ := cntrCli.Stat("/f")
	if attr.Mode&vfs.ModeSetGID == 0 {
		t.Fatal("delegated chmod cleared SGID; CntrFS should exhibit the #375 behaviour")
	}
}

func TestRlimitFsizeNotEnforced(t *testing.T) {
	cfs, _, _ := newFS(t)
	cred := vfs.Root()
	cred.FSizeLimit = 10 // caller limit; CntrFS replays without it
	cli := vfs.NewClient(cfs, cred)
	f, err := cli.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(make([]byte, 100))
	if err != nil || n != 100 {
		t.Fatalf("write = %d, %v; CntrFS must not enforce RLIMIT_FSIZE (#228)", n, err)
	}
	f.Close()
}

func TestMetadataOpsForwarded(t *testing.T) {
	_, cli, hostCli := newFS(t)
	if err := cli.MkdirAll("/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cli.Symlink("/d/sub", "/ln"); err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteFile("/d/sub/f", []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rename("/d/sub/f", "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Link("/d/f", "/hard"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	// All visible on the host.
	if _, err := hostCli.Stat("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := hostCli.Stat("/hard"); err != nil {
		t.Fatal(err)
	}
	if tgt, _ := hostCli.Readlink("/ln"); tgt != "/d/sub" {
		t.Fatalf("symlink target %q", tgt)
	}
}

func TestSubtreeRoot(t *testing.T) {
	host := memfs.New(memfs.Options{})
	hostCli := vfs.NewClient(host, vfs.Root())
	hostCli.MkdirAll("/tools/bin", 0o755)
	hostCli.WriteFile("/tools/bin/gdb", []byte("ELF"), 0o755)
	hostCli.WriteFile("/secret", []byte("no"), 0o600)
	r, _ := hostCli.Resolve("/tools")
	cfs := New(host, Options{Root: r.Ino, DedupHardlinks: true})
	cli := vfs.NewClient(cfs, vfs.Root())
	got, err := cli.ReadFile("/bin/gdb")
	if err != nil || string(got) != "ELF" {
		t.Fatalf("subtree read: %q %v", got, err)
	}
	if _, err := cli.Stat("/secret"); vfs.ToErrno(err) != vfs.ENOENT {
		t.Fatalf("outside subtree: %v, want ENOENT", err)
	}
}

func TestXattrForwardedOpaquely(t *testing.T) {
	cfs, cli, _ := newFS(t)
	cli.WriteFile("/f", nil, 0o644)
	r, _ := cli.Resolve("/f")
	acl := vfs.EncodeACL(vfs.FromMode(0o640))
	if err := cfs.Setxattr(cli.Op, r.Ino, vfs.XattrPosixACLAccess, acl, 0); err != nil {
		t.Fatal(err)
	}
	v, err := cfs.Getxattr(cli.Op, r.Ino, vfs.XattrPosixACLAccess)
	if err != nil || !bytes.Equal(v, acl) {
		t.Fatalf("ACL xattr: %v %v", v, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfs, _, hostCli := newFS(t)
	_ = hostCli
	stats := vfs.NewStats()
	cli := vfs.NewClient(vfs.Chain(cfs, stats), vfs.Root())
	cli.WriteFile("/f", []byte("abc"), 0o644)
	cli.ReadFile("/f")
	st := stats.Snapshot()
	if st.Creates == 0 || st.Reads == 0 || st.Writes == 0 || st.Lookups == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
