// Package cntrfs implements CntrFS, the FUSE passthrough filesystem at
// the heart of the paper: it serves the file tree of the "fat" container
// (or the host) to processes inside the "slim" container's nested mount
// namespace.
//
// CntrFS maintains an inode table translating its own inode numbers to
// inodes of the backing filesystem. Inodes are created on demand by
// LOOKUP and destroyed by FORGET — they are *not* persistent, which is
// why name_to_handle_at cannot be supported (xfstests #426). Each cold
// lookup performs an open()+stat() pair against the backing filesystem to
// detect hard links that reach the same backing inode through different
// paths; the paper identifies this as the dominant cost of
// metadata-heavy workloads (compilebench-read's 13.3x, §5.2.2).
//
// Credential handling mirrors the Rust implementation: the server is
// privileged and impersonates callers via setfsuid/setfsgid, keeping its
// own capability set. POSIX ACL enforcement is therefore delegated to
// the backing filesystem (xfstests #375), and the caller's RLIMIT_FSIZE
// never propagates (#228).
package cntrfs

import (
	"sync"

	"cntr/internal/vfs"
)

// Options configures a CntrFS instance.
type Options struct {
	// Root is the inode of the backing filesystem's directory to expose
	// as the CntrFS root. Zero means the backing root.
	Root vfs.Ino
	// DedupHardlinks enables the open+stat lookup path that maps every
	// backing inode to exactly one CntrFS inode. Disabling it (ablation)
	// makes lookups cheaper but breaks hard-link identity.
	DedupHardlinks bool
}

// FS is the passthrough filesystem. It implements vfs.FS and is served
// by a fuse.Server.
type FS struct {
	backing vfs.FS
	opts    Options

	mu        sync.Mutex
	nodes     map[vfs.Ino]*node   // CntrFS ino -> node
	byBacking map[vfs.Ino]vfs.Ino // backing ino -> CntrFS ino
	nextIno   vfs.Ino
}

type node struct {
	backIno vfs.Ino
	nlookup uint64
}

// New builds a CntrFS over backing. The root inode is registered
// permanently (the kernel never forgets the root).
func New(backing vfs.FS, opts Options) *FS {
	if opts.Root == 0 {
		opts.Root = vfs.RootIno
	}
	fs := &FS{
		backing:   backing,
		opts:      opts,
		nodes:     make(map[vfs.Ino]*node),
		byBacking: make(map[vfs.Ino]vfs.Ino),
		nextIno:   vfs.RootIno + 1,
	}
	fs.nodes[vfs.RootIno] = &node{backIno: opts.Root, nlookup: 1}
	fs.byBacking[opts.Root] = vfs.RootIno
	return fs
}

// Backing exposes the wrapped filesystem.
func (fs *FS) Backing() vfs.FS { return fs.backing }

// NodeCount reports the live inode-table size (used by tests and the
// forget-pressure benchmarks).
func (fs *FS) NodeCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.nodes)
}

// resolve translates a CntrFS inode to the backing inode.
func (fs *FS) resolve(ino vfs.Ino) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[ino]
	if !ok {
		return 0, vfs.ESTALE
	}
	return n.backIno, nil
}

// register maps a backing inode to a CntrFS inode, allocating one if the
// backing inode has not been seen (or if deduplication is disabled).
// It increments the lookup count, which FORGET later decrements.
func (fs *FS) register(backIno vfs.Ino) vfs.Ino {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.opts.DedupHardlinks {
		if ino, ok := fs.byBacking[backIno]; ok {
			fs.nodes[ino].nlookup++
			return ino
		}
	}
	ino := fs.nextIno
	fs.nextIno++
	fs.nodes[ino] = &node{backIno: backIno, nlookup: 1}
	if fs.opts.DedupHardlinks {
		fs.byBacking[backIno] = ino
	}
	return ino
}

// Lookup implements vfs.FS. The cold path is deliberately expensive: one
// lookup on the backing filesystem, then an open+stat pair to obtain a
// stable identity for hard-link deduplication.
func (fs *FS) Lookup(op *vfs.Op, parent vfs.Ino, name string) (vfs.Attr, error) {
	backParent, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Lookup(op, backParent, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	if fs.opts.DedupHardlinks {
		// open(O_PATH)-equivalent: revalidate access, then stat to learn
		// whether this backing inode is already in the table under a
		// different name (hard link).
		if aerr := fs.backing.Access(op, attr.Ino, 0); aerr != nil {
			return vfs.Attr{}, aerr
		}
		st, serr := fs.backing.Getattr(op, attr.Ino)
		if serr != nil {
			return vfs.Attr{}, serr
		}
		attr = st
	}
	ino := fs.register(attr.Ino)
	attr.Ino = ino
	return attr, nil
}

// Forget implements vfs.FS: drop nlookup references; at zero the inode
// vanishes from the table (hence #426: handles cannot outlive lookups).
func (fs *FS) Forget(op *vfs.Op, ino vfs.Ino, nlookup uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[ino]
	if !ok || ino == vfs.RootIno {
		return
	}
	if n.nlookup <= nlookup {
		delete(fs.nodes, ino)
		if fs.opts.DedupHardlinks {
			if cur, ok := fs.byBacking[n.backIno]; ok && cur == ino {
				delete(fs.byBacking, n.backIno)
			}
		}
		fs.backing.Forget(op, n.backIno, 1)
		return
	}
	n.nlookup -= nlookup
}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(op *vfs.Op, ino vfs.Ino) (vfs.Attr, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Getattr(op, back)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = ino
	return attr, nil
}

// Setattr implements vfs.FS. Note the caller's credential arrives with
// the server's capability set (setfsuid semantics), so mode-bit side
// effects that depend on missing capabilities do not fire — this is the
// xfstests #375 behaviour.
func (fs *FS) Setattr(op *vfs.Op, ino vfs.Ino, mask vfs.SetattrMask, attr vfs.Attr) (vfs.Attr, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	out, err := fs.backing.Setattr(op, back, mask, attr)
	if err != nil {
		return vfs.Attr{}, err
	}
	out.Ino = ino
	return out, nil
}

// Mknod implements vfs.FS.
func (fs *FS) Mknod(op *vfs.Op, parent vfs.Ino, name string, typ vfs.FileType, mode vfs.Mode, rdev uint32) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Mknod(op, back, name, typ, mode, rdev)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(op *vfs.Op, parent vfs.Ino, name string, mode vfs.Mode) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Mkdir(op, back, name, mode)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Symlink implements vfs.FS.
func (fs *FS) Symlink(op *vfs.Op, parent vfs.Ino, name, target string) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Symlink(op, back, name, target)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Readlink implements vfs.FS.
func (fs *FS) Readlink(op *vfs.Op, ino vfs.Ino) (string, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return "", err
	}
	return fs.backing.Readlink(op, back)
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(op *vfs.Op, parent vfs.Ino, name string) error {
	back, err := fs.resolve(parent)
	if err != nil {
		return err
	}
	return fs.backing.Unlink(op, back, name)
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(op *vfs.Op, parent vfs.Ino, name string) error {
	back, err := fs.resolve(parent)
	if err != nil {
		return err
	}
	return fs.backing.Rmdir(op, back, name)
}

// Rename implements vfs.FS.
func (fs *FS) Rename(op *vfs.Op, oldParent vfs.Ino, oldName string, newParent vfs.Ino, newName string, flags vfs.RenameFlags) error {
	backOld, err := fs.resolve(oldParent)
	if err != nil {
		return err
	}
	backNew, err := fs.resolve(newParent)
	if err != nil {
		return err
	}
	return fs.backing.Rename(op, backOld, oldName, backNew, newName, flags)
}

// Link implements vfs.FS.
func (fs *FS) Link(op *vfs.Op, ino vfs.Ino, parent vfs.Ino, name string) (vfs.Attr, error) {
	backIno, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	backParent, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Link(op, backIno, backParent, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Create implements vfs.FS.
func (fs *FS) Create(op *vfs.Op, parent vfs.Ino, name string, mode vfs.Mode, flags vfs.OpenFlags) (vfs.Attr, vfs.Handle, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	attr, h, err := fs.backing.Create(op, back, name, mode, flags)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, h, nil
}

// Open implements vfs.FS. Handles are backing handles passed through.
func (fs *FS) Open(op *vfs.Op, ino vfs.Ino, flags vfs.OpenFlags) (vfs.Handle, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return 0, err
	}
	return fs.backing.Open(op, back, flags)
}

// Read implements vfs.FS. The caller's RLIMIT_FSIZE does not apply here;
// reads are unaffected anyway, but see Write.
func (fs *FS) Read(op *vfs.Op, h vfs.Handle, off int64, dest []byte) (int, error) {
	return fs.backing.Read(op, h, off, dest)
}

// Write implements vfs.FS. The replayed operation runs with the server's
// credential, whose RLIMIT_FSIZE is unset — the caller's limit is neither
// known nor enforced (xfstests #228).
func (fs *FS) Write(op *vfs.Op, h vfs.Handle, off int64, data []byte) (int, error) {
	replay := op.Cred.Clone()
	replay.FSizeLimit = 0
	return fs.backing.Write(op.WithCred(replay), h, off, data)
}

// Flush implements vfs.FS.
func (fs *FS) Flush(op *vfs.Op, h vfs.Handle) error {
	return fs.backing.Flush(op, h)
}

// Fsync implements vfs.FS.
func (fs *FS) Fsync(op *vfs.Op, h vfs.Handle, datasync bool) error {
	return fs.backing.Fsync(op, h, datasync)
}

// Release implements vfs.FS.
func (fs *FS) Release(op *vfs.Op, h vfs.Handle) error { return fs.backing.Release(op, h) }

// Opendir implements vfs.FS.
func (fs *FS) Opendir(op *vfs.Op, ino vfs.Ino) (vfs.Handle, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return 0, err
	}
	return fs.backing.Opendir(op, back)
}

// Readdir implements vfs.FS. Entry inode numbers are advisory (as in
// FUSE readdir without readdirplus) and are not registered in the table.
func (fs *FS) Readdir(op *vfs.Op, h vfs.Handle, off int64) ([]vfs.Dirent, error) {
	return fs.backing.Readdir(op, h, off)
}

// Releasedir implements vfs.FS.
func (fs *FS) Releasedir(op *vfs.Op, h vfs.Handle) error { return fs.backing.Releasedir(op, h) }

// Statfs implements vfs.FS.
func (fs *FS) Statfs(op *vfs.Op, ino vfs.Ino) (vfs.StatfsOut, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.StatfsOut{}, err
	}
	return fs.backing.Statfs(op, back)
}

// Setxattr implements vfs.FS. ACL xattrs are forwarded opaquely; CntrFS
// never parses them (§5.1 failure #375 explains why).
func (fs *FS) Setxattr(op *vfs.Op, ino vfs.Ino, name string, value []byte, flags vfs.XattrFlags) error {
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Setxattr(op, back, name, value, flags)
}

// Getxattr implements vfs.FS.
func (fs *FS) Getxattr(op *vfs.Op, ino vfs.Ino, name string) ([]byte, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return nil, err
	}
	return fs.backing.Getxattr(op, back, name)
}

// Listxattr implements vfs.FS.
func (fs *FS) Listxattr(op *vfs.Op, ino vfs.Ino) ([]string, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return nil, err
	}
	return fs.backing.Listxattr(op, back)
}

// Removexattr implements vfs.FS.
func (fs *FS) Removexattr(op *vfs.Op, ino vfs.Ino, name string) error {
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Removexattr(op, back, name)
}

// Access implements vfs.FS.
func (fs *FS) Access(op *vfs.Op, ino vfs.Ino, mask uint32) error {
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Access(op, back, mask)
}

// Fallocate implements vfs.FS.
func (fs *FS) Fallocate(op *vfs.Op, h vfs.Handle, mode uint32, off, length int64) error {
	return fs.backing.Fallocate(op, h, mode, off, length)
}
