// Package cntrfs implements CntrFS, the FUSE passthrough filesystem at
// the heart of the paper: it serves the file tree of the "fat" container
// (or the host) to processes inside the "slim" container's nested mount
// namespace.
//
// CntrFS maintains an inode table translating its own inode numbers to
// inodes of the backing filesystem. Inodes are created on demand by
// LOOKUP and destroyed by FORGET — they are *not* persistent, which is
// why name_to_handle_at cannot be supported (xfstests #426). Each cold
// lookup performs an open()+stat() pair against the backing filesystem to
// detect hard links that reach the same backing inode through different
// paths; the paper identifies this as the dominant cost of
// metadata-heavy workloads (compilebench-read's 13.3x, §5.2.2).
//
// Credential handling mirrors the Rust implementation: the server is
// privileged and impersonates callers via setfsuid/setfsgid, keeping its
// own capability set. POSIX ACL enforcement is therefore delegated to
// the backing filesystem (xfstests #375), and the caller's RLIMIT_FSIZE
// never propagates (#228).
package cntrfs

import (
	"sync"

	"cntr/internal/vfs"
)

// Options configures a CntrFS instance.
type Options struct {
	// Root is the inode of the backing filesystem's directory to expose
	// as the CntrFS root. Zero means the backing root.
	Root vfs.Ino
	// DedupHardlinks enables the open+stat lookup path that maps every
	// backing inode to exactly one CntrFS inode. Disabling it (ablation)
	// makes lookups cheaper but breaks hard-link identity.
	DedupHardlinks bool
}

// FS is the passthrough filesystem. It implements vfs.FS and is served
// by a fuse.Server.
type FS struct {
	backing vfs.FS
	opts    Options

	mu        sync.Mutex
	nodes     map[vfs.Ino]*node   // CntrFS ino -> node
	byBacking map[vfs.Ino]vfs.Ino // backing ino -> CntrFS ino
	nextIno   vfs.Ino
	stats     vfs.OpStats
}

type node struct {
	backIno vfs.Ino
	nlookup uint64
}

// New builds a CntrFS over backing. The root inode is registered
// permanently (the kernel never forgets the root).
func New(backing vfs.FS, opts Options) *FS {
	if opts.Root == 0 {
		opts.Root = vfs.RootIno
	}
	fs := &FS{
		backing:   backing,
		opts:      opts,
		nodes:     make(map[vfs.Ino]*node),
		byBacking: make(map[vfs.Ino]vfs.Ino),
		nextIno:   vfs.RootIno + 1,
	}
	fs.nodes[vfs.RootIno] = &node{backIno: opts.Root, nlookup: 1}
	fs.byBacking[opts.Root] = vfs.RootIno
	return fs
}

// Backing exposes the wrapped filesystem.
func (fs *FS) Backing() vfs.FS { return fs.backing }

// NodeCount reports the live inode-table size (used by tests and the
// forget-pressure benchmarks).
func (fs *FS) NodeCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.nodes)
}

// resolve translates a CntrFS inode to the backing inode.
func (fs *FS) resolve(ino vfs.Ino) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[ino]
	if !ok {
		return 0, vfs.ESTALE
	}
	return n.backIno, nil
}

// register maps a backing inode to a CntrFS inode, allocating one if the
// backing inode has not been seen (or if deduplication is disabled).
// It increments the lookup count, which FORGET later decrements.
func (fs *FS) register(backIno vfs.Ino) vfs.Ino {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.opts.DedupHardlinks {
		if ino, ok := fs.byBacking[backIno]; ok {
			fs.nodes[ino].nlookup++
			return ino
		}
	}
	ino := fs.nextIno
	fs.nextIno++
	fs.nodes[ino] = &node{backIno: backIno, nlookup: 1}
	if fs.opts.DedupHardlinks {
		fs.byBacking[backIno] = ino
	}
	return ino
}

// Lookup implements vfs.FS. The cold path is deliberately expensive: one
// lookup on the backing filesystem, then an open+stat pair to obtain a
// stable identity for hard-link deduplication.
func (fs *FS) Lookup(c *vfs.Cred, parent vfs.Ino, name string) (vfs.Attr, error) {
	fs.mu.Lock()
	fs.stats.Lookups++
	fs.mu.Unlock()
	backParent, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Lookup(c, backParent, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	if fs.opts.DedupHardlinks {
		// open(O_PATH)-equivalent: revalidate access, then stat to learn
		// whether this backing inode is already in the table under a
		// different name (hard link).
		if aerr := fs.backing.Access(c, attr.Ino, 0); aerr != nil {
			return vfs.Attr{}, aerr
		}
		st, serr := fs.backing.Getattr(c, attr.Ino)
		if serr != nil {
			return vfs.Attr{}, serr
		}
		attr = st
	}
	ino := fs.register(attr.Ino)
	attr.Ino = ino
	return attr, nil
}

// Forget implements vfs.FS: drop nlookup references; at zero the inode
// vanishes from the table (hence #426: handles cannot outlive lookups).
func (fs *FS) Forget(ino vfs.Ino, nlookup uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Forgets++
	n, ok := fs.nodes[ino]
	if !ok || ino == vfs.RootIno {
		return
	}
	if n.nlookup <= nlookup {
		delete(fs.nodes, ino)
		if fs.opts.DedupHardlinks {
			if cur, ok := fs.byBacking[n.backIno]; ok && cur == ino {
				delete(fs.byBacking, n.backIno)
			}
		}
		fs.backing.Forget(n.backIno, 1)
		return
	}
	n.nlookup -= nlookup
}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(c *vfs.Cred, ino vfs.Ino) (vfs.Attr, error) {
	fs.mu.Lock()
	fs.stats.Getattrs++
	fs.mu.Unlock()
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Getattr(c, back)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = ino
	return attr, nil
}

// Setattr implements vfs.FS. Note the caller's credential arrives with
// the server's capability set (setfsuid semantics), so mode-bit side
// effects that depend on missing capabilities do not fire — this is the
// xfstests #375 behaviour.
func (fs *FS) Setattr(c *vfs.Cred, ino vfs.Ino, mask vfs.SetattrMask, attr vfs.Attr) (vfs.Attr, error) {
	fs.mu.Lock()
	fs.stats.Setattrs++
	fs.mu.Unlock()
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	out, err := fs.backing.Setattr(c, back, mask, attr)
	if err != nil {
		return vfs.Attr{}, err
	}
	out.Ino = ino
	return out, nil
}

// Mknod implements vfs.FS.
func (fs *FS) Mknod(c *vfs.Cred, parent vfs.Ino, name string, typ vfs.FileType, mode vfs.Mode, rdev uint32) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Mknod(c, back, name, typ, mode, rdev)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(c *vfs.Cred, parent vfs.Ino, name string, mode vfs.Mode) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Mkdir(c, back, name, mode)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Symlink implements vfs.FS.
func (fs *FS) Symlink(c *vfs.Cred, parent vfs.Ino, name, target string) (vfs.Attr, error) {
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Symlink(c, back, name, target)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Readlink implements vfs.FS.
func (fs *FS) Readlink(c *vfs.Cred, ino vfs.Ino) (string, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return "", err
	}
	return fs.backing.Readlink(c, back)
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(c *vfs.Cred, parent vfs.Ino, name string) error {
	fs.mu.Lock()
	fs.stats.Unlinks++
	fs.mu.Unlock()
	back, err := fs.resolve(parent)
	if err != nil {
		return err
	}
	return fs.backing.Unlink(c, back, name)
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(c *vfs.Cred, parent vfs.Ino, name string) error {
	back, err := fs.resolve(parent)
	if err != nil {
		return err
	}
	return fs.backing.Rmdir(c, back, name)
}

// Rename implements vfs.FS.
func (fs *FS) Rename(c *vfs.Cred, oldParent vfs.Ino, oldName string, newParent vfs.Ino, newName string, flags vfs.RenameFlags) error {
	fs.mu.Lock()
	fs.stats.Renames++
	fs.mu.Unlock()
	backOld, err := fs.resolve(oldParent)
	if err != nil {
		return err
	}
	backNew, err := fs.resolve(newParent)
	if err != nil {
		return err
	}
	return fs.backing.Rename(c, backOld, oldName, backNew, newName, flags)
}

// Link implements vfs.FS.
func (fs *FS) Link(c *vfs.Cred, ino vfs.Ino, parent vfs.Ino, name string) (vfs.Attr, error) {
	backIno, err := fs.resolve(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	backParent, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr, err := fs.backing.Link(c, backIno, backParent, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, nil
}

// Create implements vfs.FS.
func (fs *FS) Create(c *vfs.Cred, parent vfs.Ino, name string, mode vfs.Mode, flags vfs.OpenFlags) (vfs.Attr, vfs.Handle, error) {
	fs.mu.Lock()
	fs.stats.Creates++
	fs.mu.Unlock()
	back, err := fs.resolve(parent)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	attr, h, err := fs.backing.Create(c, back, name, mode, flags)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	attr.Ino = fs.register(attr.Ino)
	return attr, h, nil
}

// Open implements vfs.FS. Handles are backing handles passed through.
func (fs *FS) Open(c *vfs.Cred, ino vfs.Ino, flags vfs.OpenFlags) (vfs.Handle, error) {
	fs.mu.Lock()
	fs.stats.Opens++
	fs.mu.Unlock()
	back, err := fs.resolve(ino)
	if err != nil {
		return 0, err
	}
	return fs.backing.Open(c, back, flags)
}

// Read implements vfs.FS. The caller's RLIMIT_FSIZE does not apply here;
// reads are unaffected anyway, but see Write.
func (fs *FS) Read(c *vfs.Cred, h vfs.Handle, off int64, dest []byte) (int, error) {
	fs.mu.Lock()
	fs.stats.Reads++
	fs.stats.BytesRead += int64(len(dest))
	fs.mu.Unlock()
	return fs.backing.Read(c, h, off, dest)
}

// Write implements vfs.FS. The replayed operation runs with the server's
// credential, whose RLIMIT_FSIZE is unset — the caller's limit is neither
// known nor enforced (xfstests #228).
func (fs *FS) Write(c *vfs.Cred, h vfs.Handle, off int64, data []byte) (int, error) {
	fs.mu.Lock()
	fs.stats.Writes++
	fs.stats.BytesWrit += int64(len(data))
	fs.mu.Unlock()
	replay := c.Clone()
	replay.FSizeLimit = 0
	return fs.backing.Write(replay, h, off, data)
}

// Flush implements vfs.FS.
func (fs *FS) Flush(c *vfs.Cred, h vfs.Handle) error {
	return fs.backing.Flush(c, h)
}

// Fsync implements vfs.FS.
func (fs *FS) Fsync(c *vfs.Cred, h vfs.Handle, datasync bool) error {
	fs.mu.Lock()
	fs.stats.Fsyncs++
	fs.mu.Unlock()
	return fs.backing.Fsync(c, h, datasync)
}

// Release implements vfs.FS.
func (fs *FS) Release(h vfs.Handle) error { return fs.backing.Release(h) }

// Opendir implements vfs.FS.
func (fs *FS) Opendir(c *vfs.Cred, ino vfs.Ino) (vfs.Handle, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return 0, err
	}
	return fs.backing.Opendir(c, back)
}

// Readdir implements vfs.FS. Entry inode numbers are advisory (as in
// FUSE readdir without readdirplus) and are not registered in the table.
func (fs *FS) Readdir(c *vfs.Cred, h vfs.Handle, off int64) ([]vfs.Dirent, error) {
	fs.mu.Lock()
	fs.stats.Readdirs++
	fs.mu.Unlock()
	return fs.backing.Readdir(c, h, off)
}

// Releasedir implements vfs.FS.
func (fs *FS) Releasedir(h vfs.Handle) error { return fs.backing.Releasedir(h) }

// Statfs implements vfs.FS.
func (fs *FS) Statfs(ino vfs.Ino) (vfs.StatfsOut, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return vfs.StatfsOut{}, err
	}
	return fs.backing.Statfs(back)
}

// Setxattr implements vfs.FS. ACL xattrs are forwarded opaquely; CntrFS
// never parses them (§5.1 failure #375 explains why).
func (fs *FS) Setxattr(c *vfs.Cred, ino vfs.Ino, name string, value []byte, flags vfs.XattrFlags) error {
	fs.mu.Lock()
	fs.stats.Xattrs++
	fs.mu.Unlock()
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Setxattr(c, back, name, value, flags)
}

// Getxattr implements vfs.FS.
func (fs *FS) Getxattr(c *vfs.Cred, ino vfs.Ino, name string) ([]byte, error) {
	fs.mu.Lock()
	fs.stats.Xattrs++
	fs.mu.Unlock()
	back, err := fs.resolve(ino)
	if err != nil {
		return nil, err
	}
	return fs.backing.Getxattr(c, back, name)
}

// Listxattr implements vfs.FS.
func (fs *FS) Listxattr(c *vfs.Cred, ino vfs.Ino) ([]string, error) {
	back, err := fs.resolve(ino)
	if err != nil {
		return nil, err
	}
	return fs.backing.Listxattr(c, back)
}

// Removexattr implements vfs.FS.
func (fs *FS) Removexattr(c *vfs.Cred, ino vfs.Ino, name string) error {
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Removexattr(c, back, name)
}

// Access implements vfs.FS.
func (fs *FS) Access(c *vfs.Cred, ino vfs.Ino, mask uint32) error {
	back, err := fs.resolve(ino)
	if err != nil {
		return err
	}
	return fs.backing.Access(c, back, mask)
}

// Fallocate implements vfs.FS.
func (fs *FS) Fallocate(c *vfs.Cred, h vfs.Handle, mode uint32, off, length int64) error {
	return fs.backing.Fallocate(c, h, mode, off, length)
}

// StatsSnapshot implements vfs.FS.
func (fs *FS) StatsSnapshot() vfs.OpStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}
