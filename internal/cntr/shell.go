package cntr

import (
	"bufio"
	"fmt"
	"sort"
	"strings"

	"cntr/internal/vfs"
)

// Shell is the interactive shell Cntr exposes inside the nested
// namespace (step #4). It is a small POSIX-flavoured command interpreter
// whose file operations all go through the session's chrooted,
// mount-aware client — so `ls /usr/bin` lists the tools forwarded via
// FUSE while `ls /var/lib/cntr` lists the application container's files.
type Shell struct {
	sess *Session
	cwd  string
}

// NewShell builds a shell rooted at the nested namespace root.
func NewShell(sess *Session) *Shell {
	return &Shell{sess: sess, cwd: "/"}
}

// Serve runs a read-eval-print loop over an io stream (the pty slave).
func (sh *Shell) Serve(rw interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}) {
	scanner := bufio.NewScanner(readerFunc(rw.Read))
	fmt.Fprintf(writerFunc(rw.Write), "[cntr] attached to %s\n$ ", sh.sess.Context.Engine)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == "exit" {
			fmt.Fprintf(writerFunc(rw.Write), "exit\n")
			return
		}
		out, err := sh.Run(line)
		if err != nil {
			fmt.Fprintf(writerFunc(rw.Write), "%s: %v\n$ ", firstWord(line), err)
			continue
		}
		if out != "" && !strings.HasSuffix(out, "\n") {
			out += "\n"
		}
		fmt.Fprintf(writerFunc(rw.Write), "%s$ ", out)
	}
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func firstWord(line string) string {
	fs := strings.Fields(line)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// abs resolves an argument against the shell working directory.
func (sh *Shell) abs(path string) string {
	if strings.HasPrefix(path, "/") {
		return path
	}
	if sh.cwd == "/" {
		return "/" + path
	}
	return sh.cwd + "/" + path
}

// Run executes one command line and returns its output.
func (sh *Shell) Run(line string) (string, error) {
	// Handle `... > file` redirection.
	var redirect string
	if i := strings.LastIndex(line, ">"); i >= 0 {
		redirect = strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
	}
	args := strings.Fields(line)
	if len(args) == 0 {
		return "", nil
	}
	out, err := sh.dispatch(args)
	if err != nil {
		return "", err
	}
	if redirect != "" {
		if werr := sh.sess.Client.WriteFile(sh.abs(redirect), []byte(out), 0o644); werr != nil {
			return "", werr
		}
		return "", nil
	}
	return out, nil
}

func (sh *Shell) dispatch(args []string) (string, error) {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ls":
		return sh.ls(rest)
	case "cat":
		return sh.cat(rest)
	case "echo":
		return strings.Join(rest, " ") + "\n", nil
	case "cd":
		return sh.cd(rest)
	case "pwd":
		return sh.cwd + "\n", nil
	case "ps":
		return sh.ps()
	case "mount":
		return sh.mount()
	case "which":
		return sh.which(rest)
	case "hostname":
		return sh.sess.Nested.UTS.Hostname() + "\n", nil
	case "env":
		return strings.Join(sh.sess.Proc.Env, "\n") + "\n", nil
	case "id":
		return fmt.Sprintf("uid=%d gid=%d\n", sh.sess.Proc.UID, sh.sess.Proc.GID), nil
	case "stat":
		return sh.stat(rest)
	case "mkdir":
		return sh.mkdir(rest)
	case "rm":
		return sh.rm(rest)
	case "cp":
		return sh.cp(rest)
	case "help":
		return "builtins: ls cat echo cd pwd ps mount which hostname env id stat mkdir rm cp exec help exit\n", nil
	default:
		// Not a builtin: resolve it like execvp would and "run" it —
		// loading the binary exercises the CntrFS read path exactly as
		// exec(2) paging the file in would.
		return sh.exec(cmd, rest)
	}
}

func (sh *Shell) ls(args []string) (string, error) {
	target := sh.cwd
	if len(args) > 0 {
		target = sh.abs(args[0])
	}
	attr, err := sh.sess.Client.Stat(target)
	if err != nil {
		return "", err
	}
	if attr.Type != vfs.TypeDirectory {
		return target + "\n", nil
	}
	ents, err := sh.sess.Client.ReadDir(target)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, e := range ents {
		suffix := ""
		if e.Type == vfs.TypeDirectory {
			suffix = "/"
		}
		fmt.Fprintf(&b, "%s%s\n", e.Name, suffix)
	}
	return b.String(), nil
}

func (sh *Shell) cat(args []string) (string, error) {
	if len(args) == 0 {
		return "", vfs.EINVAL
	}
	var b strings.Builder
	for _, a := range args {
		data, err := sh.sess.Client.ReadFile(sh.abs(a))
		if err != nil {
			return "", err
		}
		b.Write(data)
	}
	return b.String(), nil
}

func (sh *Shell) cd(args []string) (string, error) {
	target := "/"
	if len(args) > 0 {
		target = sh.abs(args[0])
	}
	attr, err := sh.sess.Client.Stat(target)
	if err != nil {
		return "", err
	}
	if attr.Type != vfs.TypeDirectory {
		return "", vfs.ENOTDIR
	}
	sh.cwd = target
	return "", nil
}

// ps reads the bind-mounted /proc snapshot: the tools see the same
// process view as the application.
func (sh *Shell) ps() (string, error) {
	ents, err := sh.sess.Client.ReadDir("/proc")
	if err != nil {
		return "", err
	}
	var rows []string
	for _, e := range ents {
		if e.Type != vfs.TypeDirectory {
			continue
		}
		data, err := sh.sess.Client.ReadFile("/proc/" + e.Name + "/cmdline")
		if err != nil {
			continue
		}
		cmd := strings.ReplaceAll(string(data), "\x00", " ")
		rows = append(rows, fmt.Sprintf("%6s  %s", e.Name, cmd))
	}
	sort.Strings(rows)
	return "   PID  CMD\n" + strings.Join(rows, "\n") + "\n", nil
}

func (sh *Shell) mount() (string, error) {
	var b strings.Builder
	for _, m := range sh.sess.Nested.Mount.Mounts() {
		opt := "rw"
		if m.ReadOnly {
			opt = "ro"
		}
		fmt.Fprintf(&b, "none on %s type vfs (%s)\n", m.Point, opt)
	}
	return b.String(), nil
}

// which searches PATH inside the nested namespace.
func (sh *Shell) which(args []string) (string, error) {
	if len(args) == 0 {
		return "", vfs.EINVAL
	}
	path, err := sh.resolveTool(args[0])
	if err != nil {
		return "", err
	}
	return path + "\n", nil
}

func (sh *Shell) resolveTool(name string) (string, error) {
	if strings.Contains(name, "/") {
		abs := sh.abs(name)
		attr, err := sh.sess.Client.Stat(abs)
		if err != nil {
			return "", err
		}
		if attr.Mode&0o111 == 0 {
			return "", vfs.EACCES
		}
		return abs, nil
	}
	pathVar, _ := sh.sess.Getenv("PATH")
	for _, dir := range strings.Split(pathVar, ":") {
		if dir == "" {
			continue
		}
		candidate := dir + "/" + name
		attr, err := sh.sess.Client.Stat(candidate)
		if err != nil {
			continue
		}
		if attr.Type == vfs.TypeRegular && attr.Mode&0o111 != 0 {
			return candidate, nil
		}
	}
	return "", vfs.ENOENT
}

// exec resolves a tool on PATH and loads it through the filesystem —
// the binary bytes stream from the fat container (or host) via CntrFS.
func (sh *Shell) exec(name string, args []string) (string, error) {
	path, err := sh.resolveTool(name)
	if err != nil {
		return "", err
	}
	data, err := sh.sess.Client.ReadFile(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("executed %s (%d bytes) args=%v\n", path, len(data), args), nil
}

func (sh *Shell) stat(args []string) (string, error) {
	if len(args) == 0 {
		return "", vfs.EINVAL
	}
	attr, err := sh.sess.Client.Lstat(sh.abs(args[0]))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: %s mode=%o size=%d uid=%d gid=%d nlink=%d\n",
		args[0], attr.Type, attr.Mode, attr.Size, attr.UID, attr.GID, attr.Nlink), nil
}

func (sh *Shell) mkdir(args []string) (string, error) {
	if len(args) == 0 {
		return "", vfs.EINVAL
	}
	return "", sh.sess.Client.MkdirAll(sh.abs(args[0]), 0o755)
}

func (sh *Shell) rm(args []string) (string, error) {
	if len(args) == 0 {
		return "", vfs.EINVAL
	}
	recursive := false
	paths := args
	if args[0] == "-r" {
		recursive = true
		paths = args[1:]
	}
	for _, p := range paths {
		var err error
		if recursive {
			err = sh.sess.Client.RemoveAll(sh.abs(p))
		} else {
			err = sh.sess.Client.Remove(sh.abs(p))
		}
		if err != nil {
			return "", err
		}
	}
	return "", nil
}

// cp copies a file — e.g. pulling a tool's config from the fat side into
// the application container, or vice versa.
func (sh *Shell) cp(args []string) (string, error) {
	if len(args) != 2 {
		return "", vfs.EINVAL
	}
	data, err := sh.sess.Client.ReadFile(sh.abs(args[0]))
	if err != nil {
		return "", err
	}
	return "", sh.sess.Client.WriteFile(sh.abs(args[1]), data, 0o644)
}
