package cntr

import (
	"strings"
	"testing"

	"cntr/internal/container"
	"cntr/internal/vfs"
)

// testWorld builds a host with one slim application container (a
// MySQL-flavoured image without any tools) and one fat debug container
// (gdb, strace, and friends).
func testWorld(t *testing.T) (*Host, *container.Container, *container.Container) {
	t.Helper()
	h := NewHost()

	slimImg, err := container.BuildImage("mysql-slim", "8.0", container.ImageConfig{
		Cmd: []string{"/usr/sbin/mysqld"},
		Env: []string{"MYSQL_DATA=/var/lib/mysql", "LANG=C.UTF-8", "PATH=/usr/sbin"},
	}, container.LayerSpec{
		ID: "mysql-base",
		Files: []container.FileSpec{
			{Path: "/usr/sbin/mysqld", Size: 900, Executable: true},
			{Path: "/etc/passwd", Content: []byte("mysql:x:999:999::/var/lib/mysql:/bin/false\n")},
			{Path: "/etc/hostname", Content: []byte("db-1\n")},
			{Path: "/etc/my.cnf", Content: []byte("[mysqld]\ndatadir=/var/lib/mysql\n")},
			{Path: "/var/lib/mysql/ibdata1", Size: 4096},
			{Path: "/dev/null", Content: []byte{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fatImg, err := container.BuildImage("debug-tools", "latest", container.ImageConfig{
		Cmd: []string{"/bin/sh"},
		Env: []string{"PATH=/usr/bin:/bin", "EDITOR=vim"},
	}, container.LayerSpec{
		ID: "tools-base",
		Files: []container.FileSpec{
			{Path: "/usr/bin/gdb", Size: 5000, Executable: true},
			{Path: "/usr/bin/strace", Size: 3000, Executable: true},
			{Path: "/usr/bin/vim", Size: 2500, Executable: true},
			{Path: "/bin/sh", Size: 800, Executable: true},
			{Path: "/etc/gdbinit", Content: []byte("set pagination off\n")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	slim, err := h.Runtime.Create("db", slimImg, container.CreateOpts{Engine: "docker"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Runtime.Start(slim); err != nil {
		t.Fatal(err)
	}
	fat, err := h.Runtime.Create("tools", fatImg, container.CreateOpts{Engine: "docker"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Runtime.Start(fat); err != nil {
		t.Fatal(err)
	}
	return h, slim, fat
}

func TestAttachFatContainer(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Tools from the fat container are visible at / via CntrFS.
	out, err := sess.Run("ls /usr/bin")
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []string{"gdb", "strace", "vim"} {
		if !strings.Contains(out, tool) {
			t.Fatalf("tool %s missing from /usr/bin: %q", tool, out)
		}
	}

	// The application's filesystem appears under /var/lib/cntr.
	out, err = sess.Run("cat /var/lib/cntr/etc/my.cnf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "datadir=/var/lib/mysql") {
		t.Fatalf("app config not visible: %q", out)
	}
}

func TestAttachRunsToolThroughFUSE(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	served := sess.Server.Served()
	out, err := sess.Run("gdb /var/lib/cntr/usr/sbin/mysqld")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "executed /usr/bin/gdb (5000 bytes)") {
		t.Fatalf("exec output: %q", out)
	}
	if sess.Server.Served() <= served {
		t.Fatal("running a tool must cross the FUSE boundary")
	}
}

func TestAttachSpecialFilesBindMounted(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// /etc/passwd comes from the application container, not the tools
	// image (which has none at that path) nor the host.
	out, err := sess.Run("cat /etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mysql:x:999") {
		t.Fatalf("/etc/passwd should be the app container's: %q", out)
	}
	out, err = sess.Run("cat /etc/hostname")
	if err != nil || !strings.Contains(out, "db-1") {
		t.Fatalf("/etc/hostname: %q %v", out, err)
	}
	// But /etc/gdbinit still resolves from the tools image.
	out, err = sess.Run("cat /etc/gdbinit")
	if err != nil || !strings.Contains(out, "pagination") {
		t.Fatalf("/etc/gdbinit: %q %v", out, err)
	}
}

func TestAttachProcVisible(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	out, err := sess.Run("ps")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mysqld") {
		t.Fatalf("ps should show the app process: %q", out)
	}
}

func TestAttachEnvironmentInheritance(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Container variables are inherited...
	if v, ok := sess.Getenv("MYSQL_DATA"); !ok || v != "/var/lib/mysql" {
		t.Fatalf("MYSQL_DATA = %q, %v", v, ok)
	}
	// ...except PATH, which must come from the tools side.
	if v, _ := sess.Getenv("PATH"); v != "/usr/bin:/bin" {
		t.Fatalf("PATH = %q, want tools PATH", v)
	}
}

func TestAttachInheritsSandbox(t *testing.T) {
	h, slim, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Same cgroup as the application.
	if got := h.Procs.Cgroups.Of(sess.Proc.PID); got != slim.CgroupPath {
		t.Fatalf("cgroup = %s, want %s", got, slim.CgroupPath)
	}
	// Capabilities bounded by the docker-default profile.
	if sess.Proc.Caps.Has(vfs.CapSysAdmin) {
		t.Fatal("CAP_SYS_ADMIN must be dropped by the profile")
	}
	if !sess.Proc.Caps.Has(vfs.CapChown) {
		t.Fatal("profile-permitted capability missing")
	}
	if sess.Proc.Profile != "docker-default" {
		t.Fatalf("profile = %q", sess.Proc.Profile)
	}
	// Shares the app's pid/net/uts namespaces (tools see what the app
	// sees) but NOT its mount namespace (nested).
	appProc, _ := h.Procs.Get(slim.MainPID)
	if sess.Nested.PID != appProc.Namespaces.PID {
		t.Fatal("pid namespace must be shared")
	}
	if sess.Nested.Net != appProc.Namespaces.Net {
		t.Fatal("net namespace must be shared")
	}
	if sess.Nested.Mount == appProc.Namespaces.Mount {
		t.Fatal("mount namespace must be nested, not shared")
	}
}

func TestAttachIsolationFromApplication(t *testing.T) {
	h, slim, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Mounts made for the session must NOT appear in the app container.
	appProc, _ := h.Procs.Get(slim.MainPID)
	for _, m := range appProc.Namespaces.Mount.Mounts() {
		if strings.Contains(m.Point, ".cntr") || strings.Contains(m.Point, AppDir) {
			t.Fatalf("session mount leaked into container: %s", m.Point)
		}
	}
}

func TestAttachHostTools(t *testing.T) {
	h, _, _ := testWorld(t)
	// Install a tool on the host.
	hostCli := vfs.NewClient(h.RootFS, vfs.Root())
	if err := hostCli.WriteFile("/usr/bin/perf", []byte("ELFperf"), 0o755); err != nil {
		t.Fatal(err)
	}
	sess, err := Attach(h, Options{Container: "db"}) // no Fat: host tools
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	out, err := sess.Run("which perf")
	if err != nil || !strings.Contains(out, "/usr/bin/perf") {
		t.Fatalf("which perf: %q %v", out, err)
	}
	out, err = sess.Run("cat /var/lib/cntr/etc/my.cnf")
	if err != nil || !strings.Contains(out, "mysqld") {
		t.Fatalf("app fs via host attach: %q %v", out, err)
	}
}

func TestAttachWritesReachAppContainer(t *testing.T) {
	h, slim, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Use-case: edit a config file in place (§7, first workflow).
	if _, err := sess.Run("echo tuned > /var/lib/cntr/etc/my.cnf"); err != nil {
		t.Fatal(err)
	}
	// Visible from the application container's own namespace.
	appProc, _ := h.Procs.Get(slim.MainPID)
	appCli := appProc.Client()
	got, err := appCli.ReadFile("/etc/my.cnf")
	if err != nil || !strings.Contains(string(got), "tuned") {
		t.Fatalf("app view after edit: %q %v", got, err)
	}
}

func TestAttachEngineSelection(t *testing.T) {
	h, _, _ := testWorld(t)
	if _, err := Attach(h, Options{Container: "db", Engine: "lxc"}); err == nil {
		t.Fatal("attaching via wrong engine should fail")
	}
	sess, err := Attach(h, Options{Container: "db", Engine: "docker"})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
}

func TestAttachAllEngines(t *testing.T) {
	h := NewHost()
	img, err := container.BuildImage("app", "v1", container.ImageConfig{
		Cmd: []string{"/bin/app"},
	}, container.LayerSpec{
		ID:    "app-layer",
		Files: []container.FileSpec{{Path: "/bin/app", Size: 100, Executable: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"docker", "lxc", "rkt", "systemd-nspawn"} {
		name := "c-" + engine
		c, err := h.Runtime.Create(name, img, container.CreateOpts{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Runtime.Start(c); err != nil {
			t.Fatal(err)
		}
		sess, err := Attach(h, Options{Container: name})
		if err != nil {
			t.Fatalf("attach via %s: %v", engine, err)
		}
		if sess.Context.Engine != engine {
			t.Fatalf("resolved engine = %s, want %s", sess.Context.Engine, engine)
		}
		sess.Close()
	}
}

func TestAttachStoppedContainerFails(t *testing.T) {
	h, slim, _ := testWorld(t)
	h.Runtime.Stop(slim)
	if _, err := Attach(h, Options{Container: "db", Fat: "tools"}); err == nil {
		t.Fatal("attach to stopped container should fail")
	}
}

func TestSocketForwarding(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// An X11 server listens on the host.
	hostSockets := h.HostSockets()
	l, err := hostSockets.Listen("/tmp/.X11-unix/X0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := conn.Read(buf)
		conn.Write(append([]byte("x11-reply:"), buf[:n]...))
		conn.Close()
	}()
	// Forward it into the container's network namespace.
	if err := sess.ForwardSocket("/tmp/.X11-unix/X0", "/tmp/.X11-unix/X0"); err != nil {
		t.Fatal(err)
	}
	inside := h.SocketsFor(sess.Nested.Net)
	conn, err := inside.Dial("/tmp/.X11-unix/X0")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("hello"))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "x11-reply:hello" {
		t.Fatalf("through proxy: %q %v", buf[:n], err)
	}
	conn.Close()
}

func TestInteractiveShellOverPTY(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Interactive()
	sess.Master.Write([]byte("hostname\nexit\n"))
	buf := make([]byte, 4096)
	var out strings.Builder
	for {
		n, err := sess.Master.Read(buf)
		out.Write(buf[:n])
		if err != nil || strings.Contains(out.String(), "exit") {
			break
		}
	}
	if !strings.Contains(out.String(), "db") {
		t.Fatalf("pty transcript: %q", out.String())
	}
}

func TestShellBuiltins(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cases := []struct {
		cmd  string
		want string
	}{
		{"pwd", "/"},
		{"echo hello world", "hello world"},
		{"id", "uid=0"},
		{"mount", AppDir},
		{"which gdb", "/usr/bin/gdb"},
		{"stat /usr/bin/gdb", "size=5000"},
		{"help", "builtins"},
	}
	for _, tc := range cases {
		out, err := sess.Run(tc.cmd)
		if err != nil {
			t.Fatalf("%s: %v", tc.cmd, err)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%s: %q missing %q", tc.cmd, out, tc.want)
		}
	}
	if _, err := sess.Run("mkdir /var/lib/cntr/newdir"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run("cp /etc/gdbinit /var/lib/cntr/newdir/gdbinit"); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run("cat /var/lib/cntr/newdir/gdbinit")
	if err != nil || !strings.Contains(out, "pagination") {
		t.Fatalf("cp result: %q %v", out, err)
	}
	if _, err := sess.Run("rm -r /var/lib/cntr/newdir"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run("nosuchtool"); err == nil {
		t.Fatal("unknown tool should fail")
	}
}

func TestNestedContainerAttach(t *testing.T) {
	// Future-work feature (§7): the slim container's namespaces are
	// themselves nested — attach must still work.
	h, _, _ := testWorld(t)
	sess1, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess1.Close()
	// Attach again to the same container while a session is active.
	sess2, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	out, err := sess2.Run("ls /usr/bin")
	if err != nil || !strings.Contains(out, "gdb") {
		t.Fatalf("second session: %q %v", out, err)
	}
}
