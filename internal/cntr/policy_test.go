package cntr

import (
	"strings"
	"testing"
	"time"

	"cntr/internal/policy"
	"cntr/internal/vfs"
)

// tracedProfile attaches with tracing enabled, exercises the session,
// and returns the profile generated from the recording.
func tracedProfile(t *testing.T, h *Host) *policy.Profile {
	t.Helper()
	col := policy.NewCollector()
	sess, err := Attach(h, Options{Container: "db", Fat: "tools", Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Client.ReadDir("/usr/bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Client.ReadFile("/etc/gdbinit"); err != nil {
		t.Fatal(err)
	}
	col.JoinOriginStats(sess.Server.OriginStats())

	// The activity profile is exposed as a /proc-style file.
	snap := h.Procs.Snapshot()
	cli := vfs.NewClient(snap, vfs.Root())
	blob, err := cli.ReadFile("/policy/db")
	if err != nil {
		t.Fatalf("reading /policy/db from proc snapshot: %v", err)
	}
	if !strings.Contains(string(blob), "lookup") {
		t.Fatalf("policy view records no lookups:\n%s", blob)
	}
	sess.Close()
	return col.Profile(policy.GenOptions{})
}

func TestAttachTraceGeneratesProfile(t *testing.T) {
	h, _, _ := testWorld(t)
	p := tracedProfile(t, h)
	if len(p.Rules) == 0 {
		t.Fatal("empty profile from traced session")
	}
	if !p.Allows(vfs.KindReaddir, "/usr/bin") {
		t.Fatalf("profile misses the traced readdir: %+v", p.Rules)
	}
}

// TestAttachTraceBatched: with TraceBatched set, the collector receives
// the session's operations through the tracer's batch flusher instead
// of a per-operation callback — and Session.Close flushes the tail, so
// the generated profile matches what a synchronous trace would record.
func TestAttachTraceBatched(t *testing.T) {
	h, _, _ := testWorld(t)
	col := policy.NewCollector()
	sess, err := Attach(h, Options{
		Container: "db", Fat: "tools",
		Trace: col, TraceBatched: true,
		// A huge flush size and a long interval force the tail flush in
		// Close to do the delivery — the path that must not lose entries.
		TraceFlush: vfs.TraceBatchOptions{FlushSize: 1 << 20, FlushInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Client.ReadDir("/usr/bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Client.ReadFile("/etc/gdbinit"); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	p := col.Profile(policy.GenOptions{})
	if len(p.Rules) == 0 {
		t.Fatal("batched trace produced no rules")
	}
	if !p.Allows(vfs.KindReaddir, "/usr/bin") {
		t.Fatalf("batched trace misses the readdir: %+v", p.Rules)
	}
	if !p.Allows(vfs.KindRead, "/etc/gdbinit") {
		t.Fatalf("batched trace misses the file read: %+v", p.Rules)
	}
}

func TestAttachEnforcesProfile(t *testing.T) {
	h, _, _ := testWorld(t)
	p := tracedProfile(t, h)

	sess, err := Attach(h, Options{Container: "db", Fat: "tools", Enforce: p})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// The traced workload replays cleanly...
	if _, err := sess.Client.ReadDir("/usr/bin"); err != nil {
		t.Fatalf("on-profile readdir denied: %v", err)
	}
	if _, err := sess.Client.ReadFile("/etc/gdbinit"); err != nil {
		t.Fatalf("on-profile read denied: %v", err)
	}
	if n := sess.Enforcer.Denials(); n != 0 {
		t.Fatalf("false denials during replay: %d (%+v)", n, sess.Enforcer.Violations())
	}
	// ...and an operation the recording never did is denied.
	if err := sess.Client.WriteFile("/smuggled", []byte("x"), 0o644); err != vfs.EACCES {
		t.Fatalf("off-profile create: %v, want EACCES", err)
	}
	if sess.Enforcer.Denials() == 0 {
		t.Fatal("denial not recorded")
	}
}

func TestAttachAuditMode(t *testing.T) {
	h, _, _ := testWorld(t)
	p := tracedProfile(t, h)

	sess, err := Attach(h, Options{
		Container: "db", Fat: "tools",
		Enforce: p, EnforceAudit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Client.WriteFile("/smuggled", []byte("x"), 0o644); err != nil {
		t.Fatalf("audit mode must not deny: %v", err)
	}
	if sess.Enforcer.Denials() != 0 {
		t.Fatalf("audit mode denied %d operations", sess.Enforcer.Denials())
	}
	if sess.Enforcer.Audited() == 0 {
		t.Fatal("audit mode recorded nothing")
	}
}

// TestAttachPolicyViewLifecycle: enforcing a merged profile with a
// baseline exposes the lifecycle header and the last-diff summary in
// /proc/policy/<container>, alongside the live activity and the
// tracer's delivery health — and Session.TraceStats mirrors the latter.
func TestAttachPolicyViewLifecycle(t *testing.T) {
	h, _, _ := testWorld(t)
	base := tracedProfile(t, h)
	merged := policy.Merge(policy.MergeOptions{}, base)

	col := policy.NewCollector()
	sess, err := Attach(h, Options{
		Container: "db", Fat: "tools",
		Trace:   col,
		Enforce: merged, EnforceBaseline: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Client.ReadDir("/usr/bin"); err != nil {
		t.Fatalf("on-profile readdir denied: %v", err)
	}

	snap := h.Procs.Snapshot()
	cli := vfs.NewClient(snap, vfs.Root())
	blob, err := cli.ReadFile("/policy/db")
	if err != nil {
		t.Fatalf("reading /policy/db: %v", err)
	}
	view := string(blob)
	for _, want := range []string{`"profile"`, `"generation"`, `"last_diff"`, `"trace"`, `"activity"`} {
		if !strings.Contains(view, want) {
			t.Fatalf("policy view missing %s:\n%s", want, view)
		}
	}
	if st := sess.TraceStats(); st.Dropped != 0 {
		t.Fatalf("session trace dropped entries: %+v", st)
	}
	if sess.Enforcer.Denials() != 0 {
		t.Fatalf("merged profile denied its own recording: %+v", sess.Enforcer.Violations())
	}
}

// TestAttachRetiresOriginsOnExit: when the injected process exits, the
// mount's per-origin accounting for it is folded into the aggregate
// bucket via the process table's exit hooks.
func TestAttachRetiresOriginsOnExit(t *testing.T) {
	h, _, _ := testWorld(t)
	sess, err := Attach(h, Options{Container: "db", Fat: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	pid := uint32(sess.Proc.PID)
	// The process-table client is not chrooted: the CntrFS mount sits at
	// the temporary mount point. Its operations carry the process's PID.
	cli := sess.Proc.Client()
	if _, err := cli.ReadDir(tmpMountPoint + "/usr/bin"); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Server.OriginStats()[pid]; !ok {
		t.Fatalf("no origin stats for session pid %d", pid)
	}
	server := sess.Server
	sess.Close() // exits the process, firing the retire hook
	if _, ok := server.OriginStats()[pid]; ok {
		t.Fatalf("origin %d not retired after exit", pid)
	}
	if server.RetiredOriginStats().Ops == 0 {
		t.Fatal("retired aggregate empty after exit")
	}
}
