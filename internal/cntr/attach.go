package cntr

import (
	"encoding/json"
	"fmt"
	"strings"

	"cntr/internal/cachecl"
	"cntr/internal/cachesvc"
	"cntr/internal/caps"
	"cntr/internal/cntrfs"
	"cntr/internal/container"
	"cntr/internal/fuse"
	"cntr/internal/namespace"
	"cntr/internal/pagecache"
	"cntr/internal/policy"
	"cntr/internal/proc"
	"cntr/internal/pty"
	"cntr/internal/socketproxy"
	"cntr/internal/vfs"
)

// tmpMountPoint is the temporary directory CntrFS is mounted on inside
// the nested namespace before it becomes the root via chroot (TMP/ in
// §3.2.3).
const tmpMountPoint = "/.cntr-tmp"

// AppDir is where the application container's filesystem reappears
// inside the nested namespace.
const AppDir = "/var/lib/cntr"

// Options selects what to attach and where the tools come from.
type Options struct {
	// Container is the slim container reference (name or id).
	Container string
	// Engine optionally pins the container engine; empty tries all.
	Engine string
	// Fat is the name of the fat container providing tools; empty uses
	// the host filesystem instead.
	Fat string
	// Mount overrides the FUSE mount options (defaults to the fully
	// optimized configuration).
	Mount *fuse.MountOptions
	// EffectiveUser is the uid/gid the injected shell runs as (0 = root
	// inside the container's user namespace).
	EffectiveUser uint32
	// Trace, when set, receives every operation served by this mount:
	// a Tracer is inserted into the served filesystem's interceptor
	// chain with its Sink pointed at the collector, and the collector's
	// activity profile is exposed as /proc/policy/<container> inside
	// the session.
	Trace *policy.Collector
	// TraceBatched switches trace delivery to batched mode: the data
	// path appends each entry to a buffer and a flusher goroutine hands
	// the collector whole batches (vfs.Tracer.StartBatchSink), so a hot
	// mount does not pay a collector callback per operation. TraceFlush
	// tunes the batching; its zero value uses the defaults. The flusher
	// is flushed and stopped by Session.Close.
	TraceBatched bool
	TraceFlush   vfs.TraceBatchOptions
	// Enforce, when set, inserts a policy.Enforcer ahead of the served
	// filesystem: operations outside the profile fail with EACCES (or,
	// with EnforceAudit, are recorded as violations and let through).
	Enforce      *policy.Profile
	EnforceAudit bool
	// EnforceBaseline, when set alongside Enforce, is the profile the
	// enforced one was derived from (the previous generation); the
	// policy view then reports the structured diff between them as its
	// last_diff summary.
	EnforceBaseline *policy.Profile
	// CacheService, when set, attaches the session to a shared cache
	// tier: epoch leases are acquired at attach time (one per shard
	// group) and released on Close. The session exposes the client as
	// Session.CacheCl; a lease that expires mid-session fences that
	// mount's tier publishes until CacheCl.Reattach.
	CacheService *cachesvc.Service
	// CacheMountID names this session to the cache service; defaults to
	// the container reference.
	CacheMountID string
}

// Context is the container execution context gathered in step #1 from
// /proc — everything needed to recreate the sandbox (§3.2.1).
type Context struct {
	PID        int
	Engine     string
	Namespaces *namespace.Set
	CgroupPath string
	Profile    *caps.Profile
	Caps       vfs.CapSet
	Env        []string
	UID, GID   uint32
}

// Session is a live attach: the injected process, its nested namespace,
// the CntrFS plumbing and the interactive shell.
type Session struct {
	Host    *Host
	Target  *container.Container
	Context *Context

	Proc   *proc.Process
	Nested *namespace.Set
	Client *namespace.Client

	CntrFS *cntrfs.FS
	Conn   *fuse.Conn
	Server *fuse.Server
	Kernel *pagecache.Cache
	// Enforcer is the live policy enforcer when Options.Enforce was
	// set; its Denials/Violations expose what the policy blocked.
	Enforcer *policy.Enforcer
	// Tracer is the mount's trace source when Options.Trace was set;
	// TraceStats exposes its batched-delivery health (drops, spills).
	Tracer *vfs.Tracer
	// CacheCl is the session's cache-tier client when
	// Options.CacheService was set; nil otherwise.
	CacheCl *cachecl.Client

	Master *pty.Master
	slave  *pty.Slave
	shell  *Shell

	proxies []*socketproxy.Proxy
	// removeIOSource unregisters this mount's /proc io feed on Close;
	// removeExitHook and removePolicyView undo the other process-table
	// registrations the attach made.
	removeIOSource   func()
	removeExitHook   func()
	removePolicyView func()
	// stopTrace flushes and stops the batched trace flusher when
	// Options.TraceBatched was set.
	stopTrace func()
	closed    bool
}

// Attach performs the four-step workflow of §3.2 and returns a live
// session.
func Attach(h *Host, opts Options) (*Session, error) {
	// Step #1: resolve the container name to a pid and gather the
	// container context from /proc.
	ctx, target, err := resolveContext(h, opts)
	if err != nil {
		return nil, fmt.Errorf("cntr: resolving %q: %w", opts.Container, err)
	}

	// The FUSE control fd must be opened *before* attaching: inside the
	// container's mount namespace /dev/fuse may not exist. We model this
	// by constructing the transport queue now.
	mountOpts := fuse.DefaultMountOptions()
	if opts.Mount != nil {
		mountOpts = *opts.Mount
	}

	// Step #2: launch the CntrFS server — inside the fat container when
	// one is named, otherwise on the host. The server serves the tools
	// filesystem.
	toolsFS, toolsEnv, err := toolsRoot(h, opts.Fat)
	if err != nil {
		return nil, fmt.Errorf("cntr: locating tools: %w", err)
	}
	cfs := cntrfs.New(toolsFS, cntrfs.Options{DedupHardlinks: true})
	// The served filesystem is wrapped in the policy interceptors the
	// caller asked for. The tracer is outermost so it also records
	// operations the enforcer denies — with EACCES as their outcome —
	// which is what makes denials auditable through the activity view.
	var ics []vfs.Interceptor
	var stopTrace func()
	var tracer *vfs.Tracer
	if opts.Trace != nil {
		// Each mount gets its own path-learning scope: inode numbers are
		// only meaningful within one mount, and a shared collector may be
		// tracing several attached containers at once.
		tracer = vfs.NewTracer(0)
		run := opts.Trace.NewRun()
		if opts.TraceBatched {
			flush := opts.TraceFlush
			if flush == (vfs.TraceBatchOptions{}) {
				// Default to lossless: the trace feeds policy generation,
				// where shed entries silently weaken the profile. Callers
				// that prefer shedding pass explicit TraceFlush knobs.
				flush.Lossless = true
			}
			stopTrace = tracer.StartBatchSink(run.SinkBatch, flush)
		} else {
			tracer.Sink = run.Sink
		}
		ics = append(ics, tracer)
	}
	var enforcer *policy.Enforcer
	if opts.Enforce != nil {
		enforcer = policy.NewEnforcer(opts.Enforce, opts.EnforceAudit)
		ics = append(ics, enforcer)
	}
	// Attach to the shared cache tier before serving: the session's
	// lease epochs exist for the mount's whole lifetime.
	var cacheCl *cachecl.Client
	if opts.CacheService != nil {
		mountID := opts.CacheMountID
		if mountID == "" {
			mountID = opts.Container
		}
		cacheCl = cachecl.New(opts.CacheService, mountID, h.Clock, h.Model)
		cacheCl.Attach()
	}
	served := vfs.Chain(cfs, ics...)
	// Any failure below must stop the trace flusher it no longer owns;
	// on success the session takes it over and Close stops it.
	attached := false
	defer func() {
		if !attached && stopTrace != nil {
			stopTrace()
		}
	}()
	conn, server := fuse.Mount(served, h.Clock, h.Model, mountOpts)
	kernel := pagecache.New(conn, h.Clock, h.Model, pagecache.Options{
		KeepCache:    mountOpts.KeepCache,
		Writeback:    mountOpts.WritebackCache,
		MaxWriteSize: int64(mountOpts.MaxWrite),
	})

	// Step #3: initialize the tools namespace. Fork, join the target's
	// namespaces and cgroup, build the nested mount namespace, mount
	// CntrFS at TMP/, re-expose the app filesystem, bind special files,
	// then chroot.
	child, err := h.Procs.Spawn(1, "cntr", []string{"cntr", "attach", opts.Container})
	if err != nil {
		conn.Unmount()
		server.Wait()
		return nil, err
	}
	// setns(2) into every namespace of the target...
	child.Namespaces.SetnsAll(ctx.Namespaces)
	// ...then unshare a nested mount namespace so our mounts stay
	// invisible to the application (all mount points private).
	nestedMount := ctx.Namespaces.Mount.Clone()
	nestedMount.MakeAllPrivate()
	nested := ctx.Namespaces.Clone()
	nested.Mount = nestedMount
	child.Namespaces = nested
	// Join the container's cgroup.
	if err := h.Procs.Cgroups.Attach(child.PID, ctx.CgroupPath); err != nil {
		conn.Unmount()
		server.Wait()
		h.Procs.Exit(child.PID)
		return nil, err
	}

	// Mount CntrFS on the temporary mount point.
	if err := nestedMount.Mount(tmpMountPoint, kernel, vfs.RootIno, namespace.PropPrivate, false); err != nil {
		conn.Unmount()
		server.Wait()
		h.Procs.Exit(child.PID)
		return nil, err
	}
	// Re-expose every pre-existing container mount under TMP/var/lib/cntr.
	rootMount, _ := ctx.Namespaces.Mount.MountAt("/")
	nestedMount.Mount(tmpMountPoint+AppDir, rootMount.FS, rootMount.Root, namespace.PropPrivate, false)
	for _, m := range ctx.Namespaces.Mount.Mounts() {
		if m.Point == "/" {
			continue
		}
		nestedMount.Mount(tmpMountPoint+AppDir+m.Point, m.FS, m.Root, namespace.PropPrivate, m.ReadOnly)
	}
	// Bind the pseudo filesystems and per-container config files over
	// the tools view: /proc (so tools can see and trace the app), /dev,
	// /etc/passwd, /etc/hostname.
	procSnap := h.Procs.Snapshot()
	nestedMount.Mount(tmpMountPoint+"/proc", procSnap, vfs.RootIno, namespace.PropPrivate, false)
	appOp := vfs.RootOp()
	for _, special := range []string{"/dev", "/etc/passwd", "/etc/hostname"} {
		fs, ino, _, rerr := ctx.Namespaces.Mount.Resolve(appOp, special)
		if rerr != nil {
			continue // absent in this container; skip
		}
		nestedMount.Mount(tmpMountPoint+special, fs, ino, namespace.PropPrivate, false)
	}

	// Atomically pivot into the new hierarchy: chroot(TMP).
	cred := &vfs.Cred{
		UID: opts.EffectiveUser, GID: opts.EffectiveUser,
		FSUID: opts.EffectiveUser, FSGID: opts.EffectiveUser,
		Caps: vfs.FullCapSet(),
	}
	// Drop capabilities by applying the container's MAC profile, and
	// restrict to the container's capability set: the tools must not
	// escape the sandbox.
	ctx.Profile.Apply(cred)
	cred.Caps = cred.Caps.Intersect(ctx.Caps)
	child.Caps = cred.Caps
	child.Profile = ctx.Profile.Name
	nsCli := namespace.NewClient(nestedMount, cred)
	chrooted, err := nsCli.Chroot(tmpMountPoint)
	if err != nil {
		conn.Unmount()
		server.Wait()
		h.Procs.Exit(child.PID)
		return nil, err
	}

	// Apply the container's environment — except PATH, which comes from
	// the tools side since the shell must find the tools (§3.2.3).
	env := applyEnv(ctx.Env, toolsEnv)
	child.Env = env
	child.UID, child.GID = opts.EffectiveUser, opts.EffectiveUser

	// Step #4: interactive shell on a pseudo-TTY.
	master, slave := pty.New()
	// Feed the server's per-origin (Op.PID) request-table counters into
	// the process table, so /proc/<pid>/io in the next snapshot shows
	// which process moved how much data through this mount. Registered
	// last — every fallible attach step is behind us — so no error path
	// can leave a feed pointing at a torn-down mount; Session.Close
	// unregisters it.
	removeIOSource := h.Procs.AddIOSource(func() map[uint32]proc.IOCounters {
		stats := server.OriginStats()
		out := make(map[uint32]proc.IOCounters, len(stats))
		for pid, s := range stats {
			out[pid] = proc.IOCounters{
				ReadBytes:  s.ReadBytes,
				WriteBytes: s.WriteBytes,
				ReadOps:    s.ReadOps,
				WriteOps:   s.WriteOps,
				Ops:        s.Ops,
			}
		}
		return out
	})
	// When a process exits, fold its per-origin request-table counters
	// into the aggregate bucket: accounting stays bounded by live
	// processes instead of growing with every PID the mount ever served.
	removeExitHook := h.Procs.AddExitHook(func(pid int) {
		server.RetireOrigin(uint32(pid))
	})
	var removePolicyView func()
	if opts.Trace != nil || opts.Enforce != nil {
		removePolicyView = h.Procs.AddPolicyView(opts.Container, policyView(opts, tracer))
	}
	sess := &Session{
		Host: h, Target: target, Context: ctx,
		Proc: child, Nested: nested, Client: chrooted,
		CntrFS: cfs, Conn: conn, Server: server, Kernel: kernel,
		Enforcer: enforcer, Tracer: tracer, CacheCl: cacheCl,
		Master: master, slave: slave,
		removeIOSource:   removeIOSource,
		removeExitHook:   removeExitHook,
		removePolicyView: removePolicyView,
		stopTrace:        stopTrace,
	}
	attached = true
	sess.shell = NewShell(sess)
	return sess, nil
}

// policyView builds the /proc/policy/<container> renderer. The view
// carries the enforced profile's lifecycle header (version, generation,
// merge provenance) and the structured-diff summary against
// EnforceBaseline when one was given, the collector's live activity
// snapshot when recording, and the tracer's batched-delivery health —
// so one file answers "what policy is this container under, where did
// it come from, and is the recording trustworthy".
func policyView(opts Options, tracer *vfs.Tracer) func() []byte {
	var lastDiff string
	if opts.Enforce != nil && opts.EnforceBaseline != nil {
		lastDiff = policy.Diff(opts.EnforceBaseline, opts.Enforce).Summary()
	}
	return func() []byte {
		view := make(map[string]any)
		if p := opts.Enforce; p != nil {
			view["profile"] = map[string]any{
				"version":     p.Version,
				"generation":  p.Generation,
				"runs":        p.Runs,
				"source_runs": p.SourceRuns,
			}
			if lastDiff != "" {
				view["last_diff"] = lastDiff
			}
		}
		if tracer != nil {
			view["trace"] = tracer.Stats()
		}
		if opts.Trace != nil {
			view["activity"] = json.RawMessage(opts.Trace.RenderJSON())
		}
		b, err := json.MarshalIndent(view, "", "  ")
		if err != nil {
			return []byte("{}\n")
		}
		return append(b, '\n')
	}
}

// TraceStats snapshots the session tracer's delivery counters — drops,
// spill-journal traffic, journal footprint. Zero-valued when the
// session was attached without tracing.
func (s *Session) TraceStats() vfs.TraceStats {
	if s.Tracer == nil {
		return vfs.TraceStats{}
	}
	return s.Tracer.Stats()
}

// resolveContext is step #1: name → pid → full container context.
func resolveContext(h *Host, opts Options) (*Context, *container.Container, error) {
	var pid int
	var engineName string
	var err error
	if opts.Engine != "" {
		eng, eerr := h.Runtime.Engine(opts.Engine)
		if eerr != nil {
			return nil, nil, eerr
		}
		pid, err = eng.ResolvePID(opts.Container)
		engineName = opts.Engine
	} else {
		pid, engineName, err = container.ResolveAnyEngine(h.Runtime, opts.Container)
	}
	if err != nil {
		return nil, nil, err
	}
	p, err := h.Procs.Get(pid)
	if err != nil {
		return nil, nil, err
	}
	target, _ := h.Runtime.Get(opts.Container)
	if target == nil {
		target, _ = h.Runtime.ByID(opts.Container)
	}
	ctx := &Context{
		PID:        pid,
		Engine:     engineName,
		Namespaces: p.Namespaces,
		CgroupPath: h.Procs.Cgroups.Of(pid),
		Profile:    h.Procs.Profiles.Get(p.Profile),
		Caps:       p.Caps,
		Env:        append([]string(nil), p.Env...),
		UID:        p.UID,
		GID:        p.GID,
	}
	return ctx, target, nil
}

// toolsRoot locates the filesystem the CntrFS server exports: the fat
// container's root, or the host's.
func toolsRoot(h *Host, fat string) (vfs.FS, []string, error) {
	if fat == "" {
		m, _ := h.NS.Mount.MountAt("/")
		return m.FS, []string{"PATH=/usr/bin:/bin:/usr/sbin:/sbin"}, nil
	}
	c, err := h.Runtime.Get(fat)
	if err != nil {
		return nil, nil, err
	}
	m, ok := c.Namespaces.Mount.MountAt("/")
	if !ok {
		return nil, nil, vfs.ENOENT
	}
	env := c.Env
	hasPath := false
	for _, kv := range env {
		if strings.HasPrefix(kv, "PATH=") {
			hasPath = true
		}
	}
	if !hasPath {
		env = append(env, "PATH=/usr/bin:/bin")
	}
	return m.FS, env, nil
}

// applyEnv merges the container environment with the tools PATH: all
// container variables win except PATH, which is inherited from the
// tools environment.
func applyEnv(containerEnv, toolsEnv []string) []string {
	out := make([]string, 0, len(containerEnv)+1)
	for _, kv := range containerEnv {
		if strings.HasPrefix(kv, "PATH=") {
			continue
		}
		out = append(out, kv)
	}
	for _, kv := range toolsEnv {
		if strings.HasPrefix(kv, "PATH=") {
			out = append(out, kv)
			break
		}
	}
	return out
}

// Getenv reads a variable from the session's environment.
func (s *Session) Getenv(key string) (string, bool) {
	for _, kv := range s.Proc.Env {
		if strings.HasPrefix(kv, key+"=") {
			return kv[len(key)+1:], true
		}
	}
	return "", false
}

// ForwardSocket proxies a Unix socket from inside the session's network
// namespace to a socket on the host (X11/D-Bus forwarding, §3.2.4).
func (s *Session) ForwardSocket(insidePath, hostPath string) error {
	inside := s.Host.SocketsFor(s.Nested.Net)
	host := s.Host.HostSockets()
	p, err := socketproxy.NewProxy(inside, insidePath, host, hostPath, s.Host.Clock, s.Host.Model)
	if err != nil {
		return err
	}
	s.proxies = append(s.proxies, p)
	return nil
}

// Run executes one command line in the session's shell and returns its
// output (convenience API used by tests and examples; Interactive runs
// the same shell over the pty).
func (s *Session) Run(line string) (string, error) {
	return s.shell.Run(line)
}

// Interactive pumps the shell over the pseudo-TTY until the input side
// closes. Callers write command lines to Master and read output back.
func (s *Session) Interactive() {
	go s.shell.Serve(s.slave)
}

// Close tears the session down: proxies, pty, process, FUSE mount.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.proxies {
		p.Close()
	}
	s.Master.Close()
	s.Host.Procs.Exit(s.Proc.PID)
	s.Conn.Unmount()
	s.Server.Wait()
	if s.CacheCl != nil {
		// Surrender the lease epochs: a released lease can never fence a
		// later holder, and the next session mints fresh epochs anyway.
		s.CacheCl.Release()
	}
	if s.stopTrace != nil {
		// The mount is quiesced: flush the tail of the trace so the
		// collector (and any profile generated from it) sees every
		// operation this session served.
		s.stopTrace()
	}
	if s.removeIOSource != nil {
		s.removeIOSource()
	}
	if s.removeExitHook != nil {
		s.removeExitHook()
	}
	if s.removePolicyView != nil {
		s.removePolicyView()
	}
}
