package cntr

import (
	"testing"

	"cntr/internal/cachesvc"
)

// TestSessionLeaseLifecycle: an attach with a cache service holds one
// lease per shard group for the session's lifetime, and Close releases
// them all.
func TestSessionLeaseLifecycle(t *testing.T) {
	h, _, _ := testWorld(t)
	tier := cachesvc.New(cachesvc.Options{Shards: 8, Groups: 4})

	sess, err := Attach(h, Options{Container: "db", Fat: "tools", CacheService: tier})
	if err != nil {
		t.Fatal(err)
	}
	if sess.CacheCl == nil {
		t.Fatal("session has no cache client despite CacheService option")
	}
	st := tier.Stats()
	if st.LeasesActive != int64(tier.NumGroups()) {
		t.Fatalf("LeasesActive = %d, want %d", st.LeasesActive, tier.NumGroups())
	}
	for g := 0; g < tier.NumGroups(); g++ {
		if _, ok := sess.CacheCl.Lease(g); !ok {
			t.Fatalf("no lease held for group %d", g)
		}
	}
	// The session's client can publish under its leases.
	if err := sess.CacheCl.PutAttr("/etc/my.cnf", []byte("cached-attr")); err != nil {
		t.Fatalf("publish under session lease: %v", err)
	}

	sess.Close()
	if st := tier.Stats(); st.LeasesActive != 0 {
		t.Fatalf("LeasesActive after Close = %d, want 0", st.LeasesActive)
	}

	// A second session mints fresh epochs rather than inheriting.
	sess2, err := Attach(h, Options{Container: "db", Fat: "tools", CacheService: tier})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	l2, _ := sess2.CacheCl.Lease(0)
	if l2.Epoch < 2 {
		t.Fatalf("second session's epoch = %d, want a fresh (higher) epoch", l2.Epoch)
	}
	if l2.Mount != "db" {
		t.Fatalf("lease mount identity = %q, want container ref", l2.Mount)
	}
}
