// Package cntr implements the paper's primary contribution: attaching a
// tools environment ("fat" container or host) into a running application
// container ("slim") through a nested mount namespace served by CntrFS
// over FUSE, while inheriting the complete sandbox of the target —
// namespaces, cgroup, capabilities, MAC profile and environment (§3).
package cntr

import (
	"sync"

	"cntr/internal/container"
	"cntr/internal/memfs"
	"cntr/internal/namespace"
	"cntr/internal/proc"
	"cntr/internal/sim"
	"cntr/internal/socketproxy"
	"cntr/internal/vfs"
)

// Host bundles one simulated machine: clock, root filesystem, process
// table, container runtime, registry access and socket tables.
type Host struct {
	Clock   *sim.Clock
	Model   *sim.CostModel
	RootFS  *memfs.FS
	NS      *namespace.Set
	Procs   *proc.Table
	Runtime *container.Runtime
	Node    *container.Node

	mu      sync.Mutex
	sockets map[uint64]*socketproxy.Registry // by NetNS id
}

// NewHost boots a host: a root filesystem with the usual skeleton, init
// in the initial namespaces, and an empty container runtime.
func NewHost() *Host {
	rootFS := memfs.New(memfs.Options{})
	cli := vfs.NewClient(rootFS, vfs.Root())
	for _, dir := range []string{"/bin", "/usr/bin", "/etc", "/dev", "/proc", "/tmp", "/var/lib", "/root", "/home"} {
		cli.MkdirAll(dir, 0o755)
	}
	cli.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/root:/bin/sh\n"), 0o644)
	cli.WriteFile("/etc/hostname", []byte("host\n"), 0o644)
	cli.WriteFile("/bin/sh", []byte("#!host-shell"), 0o755)

	mountNS := namespace.NewMountNS(rootFS)
	hostSet := namespace.HostSet(mountNS)
	table := proc.NewTable(hostSet)
	h := &Host{
		Clock:   sim.NewClock(),
		Model:   sim.DefaultCostModel(),
		RootFS:  rootFS,
		NS:      hostSet,
		Procs:   table,
		Runtime: container.NewRuntime(table, hostSet),
		Node:    container.NewNode(),
		sockets: make(map[uint64]*socketproxy.Registry),
	}
	return h
}

// SocketsFor returns (creating on demand) the Unix-socket table of a
// network namespace.
func (h *Host) SocketsFor(ns *namespace.NetNS) *socketproxy.Registry {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.sockets[ns.ID]
	if !ok {
		r = socketproxy.NewRegistry()
		h.sockets[ns.ID] = r
	}
	return r
}

// HostSockets is the host network namespace's socket table.
func (h *Host) HostSockets() *socketproxy.Registry {
	return h.SocketsFor(h.NS.Net)
}
