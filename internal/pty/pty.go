// Package pty implements the pseudo-terminal pair Cntr uses to connect
// the interactive shell inside the nested namespace with the user's
// terminal on the host (§3.2.4). For isolation, the host terminal file
// descriptors are never leaked into the container; the pty acts as a
// proxy between the two sides.
package pty

import (
	"io"
	"sync"
)

// pipe is a blocking in-memory byte stream.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, io.ErrClosedPipe
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return len(b), nil
}

func (p *pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.buf) == 0 && p.closed {
		return 0, io.EOF
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

func (p *pipe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// Master is the host-terminal side of the pair.
type Master struct {
	in  *pipe // master -> slave (keystrokes)
	out *pipe // slave -> master (program output)
}

// Slave is the in-container side, handed to the shell.
type Slave struct {
	in  *pipe
	out *pipe
	// Echo mirrors input back to the master, like a terminal in
	// canonical mode.
	Echo bool
}

// New returns a connected master/slave pair.
func New() (*Master, *Slave) {
	in, out := newPipe(), newPipe()
	return &Master{in: in, out: out}, &Slave{in: in, out: out}
}

// Write sends keystrokes to the slave.
func (m *Master) Write(b []byte) (int, error) { return m.in.Write(b) }

// Read receives program output.
func (m *Master) Read(b []byte) (int, error) { return m.out.Read(b) }

// Close shuts both directions down.
func (m *Master) Close() error {
	m.in.Close()
	m.out.Close()
	return nil
}

// Read receives keystrokes, echoing when enabled.
func (s *Slave) Read(b []byte) (int, error) {
	n, err := s.in.Read(b)
	if err == nil && s.Echo && n > 0 {
		s.out.Write(b[:n])
	}
	return n, err
}

// Write sends program output to the master.
func (s *Slave) Write(b []byte) (int, error) { return s.out.Write(b) }

// Close shuts both directions down.
func (s *Slave) Close() error {
	s.in.Close()
	s.out.Close()
	return nil
}

// Proxy copies user terminal I/O through the master until either side
// ends, returning when the output side is drained. It is what connects
// cntr's stdio to the injected shell.
func Proxy(m *Master, userIn io.Reader, userOut io.Writer) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(userOut, m) //nolint:errcheck
	}()
	io.Copy(m, userIn) //nolint:errcheck
	m.in.Close()
	wg.Wait()
}
