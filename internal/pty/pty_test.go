package pty

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestMasterToSlave(t *testing.T) {
	m, s := New()
	go m.Write([]byte("input"))
	buf := make([]byte, 16)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "input" {
		t.Fatalf("slave read: %q %v", buf[:n], err)
	}
}

func TestSlaveToMaster(t *testing.T) {
	m, s := New()
	go s.Write([]byte("output"))
	buf := make([]byte, 16)
	n, err := m.Read(buf)
	if err != nil || string(buf[:n]) != "output" {
		t.Fatalf("master read: %q %v", buf[:n], err)
	}
}

func TestEcho(t *testing.T) {
	m, s := New()
	s.Echo = true
	go m.Write([]byte("hi"))
	buf := make([]byte, 16)
	s.Read(buf)
	n, err := m.Read(buf)
	if err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
}

func TestCloseUnblocksReaders(t *testing.T) {
	m, s := New()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := s.Read(buf)
		done <- err
	}()
	m.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("read after close: %v, want EOF", err)
	}
	if _, err := m.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestProxyRoundTrip(t *testing.T) {
	m, s := New()
	// The "shell": uppercases each line.
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := s.Read(buf)
			if err != nil {
				s.Close()
				return
			}
			s.Write(bytes.ToUpper(buf[:n]))
		}
	}()
	userIn := strings.NewReader("hello\n")
	var userOut bytes.Buffer
	Proxy(m, userIn, &userOut)
	if got := userOut.String(); got != "HELLO\n" {
		t.Fatalf("proxied output = %q", got)
	}
}
